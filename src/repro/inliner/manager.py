"""The inline expansion driver (§3).

Ties the phases together, on a *copy* of the input module:

1. profile-weighted call graph construction,
2. linearization (sort functions by execution count),
3. expansion-site selection via the cost function,
4. physical expansion in linear order (each function's expansions are
   finished before any function later in the sequence starts, so the
   most recent definition of every callee can be cached — our in-memory
   modules make the paper's write-back definition cache implicit),
5. optional conservative unreachable-function elimination.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.callgraph.graph import CallGraph
from repro.errors import InlineError
from repro.il.module import ILModule
from repro.il.verifier import verify_module
from repro.inliner.classify import ClassifiedSites
from repro.inliner.expand import ExpansionRecord
from repro.inliner.params import InlineParameters
from repro.inliner.select import SelectionResult
from repro.observability import Observability, resolve
from repro.observability.audit import InlineDecision
from repro.pipeline.manager import PassManager
from repro.pipeline.passes import PassContext, get_pass
from repro.profiler.profile import ProfileData


@dataclass
class InlineResult:
    """Everything the expansion produced, plus the numbers Table 4 needs."""

    module: ILModule
    graph: CallGraph
    sequence: list[str]
    selection: SelectionResult
    classified: ClassifiedSites
    records: list[ExpansionRecord] = field(default_factory=list)
    removed_functions: list[str] = field(default_factory=list)
    original_size: int = 0
    final_size: int = 0
    #: Code size right after physical expansion, before unreachable
    #: bodies are cleaned up — the number ``selection.projected_size``
    #: must reproduce exactly (asserted by :class:`InlineExpander`).
    pre_cleanup_size: int = 0

    @property
    def code_increase(self) -> float:
        """Static code growth fraction (Table 4's *code inc*)."""
        if self.original_size == 0:
            return 0.0
        return (self.final_size - self.original_size) / self.original_size

    @property
    def expanded_sites(self) -> set[int]:
        return {record.site for record in self.records}

    @property
    def decisions(self) -> list[InlineDecision]:
        """The audit log: one reason-coded record per considered arc."""
        return self.selection.decisions


class InlineExpander:
    """Runs the complete §3 pipeline on a copy of the module."""

    def __init__(
        self,
        module: ILModule,
        profile: ProfileData,
        params: InlineParameters | None = None,
        seed: int = 0,
        remove_unreachable: bool = True,
        verify: bool = True,
        linearize_method: str = "hybrid",
        check: bool = False,
        obs: Observability | None = None,
    ):
        self._input = module
        self._profile = profile
        self._params = params or InlineParameters()
        self._seed = seed
        self._remove_unreachable = remove_unreachable
        self._verify = verify
        self._check = check
        self._linearize_method = linearize_method
        self._obs = resolve(obs)

    #: The §3 phase order, resolved through the global pass registry.
    PHASES = ("callgraph", "classify", "linearize", "select", "expand")

    def run(self) -> InlineResult:
        obs = self._obs
        tracer = obs.tracer
        module = self._input.clone()
        original_size = module.total_code_size()

        phases = list(self.PHASES)
        if self._remove_unreachable:
            phases.append("cleanup")
        manager = PassManager(
            [get_pass(name) for name in phases], fixpoint=False
        )
        ctx = PassContext(
            module=module,
            profile=self._profile,
            params=self._params,
            seed=self._seed,
            linearize_method=self._linearize_method,
            check=self._check,
            obs=obs,
        )
        manager.run_module(module, ctx)
        graph = ctx.state["graph"]
        classified = ctx.state["classified"]
        sequence = ctx.state["sequence"]
        selection = ctx.state["selection"]
        records: list[ExpansionRecord] = ctx.state.get("records", [])
        removed: list[str] = ctx.state.get("removed", [])
        pre_cleanup_size = ctx.state.get(
            "pre_cleanup_size", module.total_code_size()
        )
        self._reconcile(selection, records, original_size, pre_cleanup_size, obs)
        if self._verify:
            with tracer.span("inline.verify"):
                verify_module(module)
        if obs.enabled:
            obs.metrics.inc("inliner.expansions_performed", len(records))
            obs.metrics.inc("inliner.functions_removed", len(removed))
            obs.metrics.observe(
                "inliner.code_growth",
                (module.total_code_size() - original_size) / original_size
                if original_size
                else 0.0,
            )
        return InlineResult(
            module=module,
            graph=graph,
            sequence=sequence,
            selection=selection,
            classified=classified,
            records=records,
            removed_functions=removed,
            original_size=original_size,
            final_size=module.total_code_size(),
            pre_cleanup_size=pre_cleanup_size,
        )

    @staticmethod
    def _reconcile(
        selection: SelectionResult,
        records: list[ExpansionRecord],
        original_size: int,
        pre_cleanup_size: int,
        obs: Observability,
    ) -> None:
        """Assert the cost model's bookkeeping matches physical reality.

        Two exact identities must hold after every run (no epsilon):
        the selection's projected program size equals the measured
        post-expansion code size, and the per-record instruction deltas
        sum to the same growth. A violation means the cost model and
        :func:`~repro.inliner.expand.expand_call_site` have drifted
        apart — the silent-contract bug this check exists to catch.
        """
        recorded_growth = sum(record.added_instructions for record in records)
        if original_size + recorded_growth != pre_cleanup_size:
            raise InlineError(
                "expansion records do not reconcile: original size"
                f" {original_size} + recorded growth {recorded_growth}"
                f" != measured post-expansion size {pre_cleanup_size}"
            )
        if selection.projected_size != pre_cleanup_size:
            raise InlineError(
                "cost model drifted from physical expansion:"
                f" projected size {selection.projected_size}"
                f" != measured post-expansion size {pre_cleanup_size}"
                f" ({len(records)} expansions from size {original_size})"
            )
        if obs.enabled:
            obs.metrics.inc("inliner.reconciliations")
            obs.tracer.event(
                "inline.reconcile",
                projected_size=selection.projected_size,
                measured_size=pre_cleanup_size,
                expansions=len(records),
            )


def inline_module(
    module: ILModule,
    profile: ProfileData,
    params: InlineParameters | None = None,
    seed: int = 0,
    linearize_method: str = "hybrid",
    check: bool = False,
    obs: Observability | None = None,
) -> InlineResult:
    """One-call convenience wrapper around :class:`InlineExpander`."""
    return InlineExpander(
        module,
        profile,
        params,
        seed,
        linearize_method=linearize_method,
        check=check,
        obs=obs,
    ).run()
