"""Physical inline expansion (§2.4, §3.5).

Inlining one call site involves three tasks: (1) duplication of the
callee body, (2) variable renaming, and (3) symbol-table (frame-slot)
updates. Renamed identifiers are qualified with a path name built from
the callee and the call-site id — e.g. register ``x`` of ``min`` inlined
at site 42 becomes ``min@42/x`` — matching §5's "identifiers are
qualified with proper path names to simplify symbol table management".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import InlineError
from repro.il.function import ILFunction
from repro.il.instructions import Instr, Opcode, is_real
from repro.il.module import ILModule


@dataclass
class ExpansionRecord:
    """What one physical expansion did."""

    site: int
    caller: str
    callee: str
    #: Call sites copied from the callee get fresh ids: old -> new.
    copied_sites: dict[int, int] = field(default_factory=dict)
    #: Net growth in *real* instructions (the code-size delta: labels
    #: excluded, the removed call accounted). Matches
    #: :meth:`repro.inliner.cost.CostModel.splice_delta` exactly.
    added_instructions: int = 0
    #: Net growth in label pseudo-instructions (the copied callee
    #: labels plus the spliced ``…/return`` label).
    added_labels: int = 0


def _find_call(caller: ILFunction, site: int) -> int:
    for index, instr in enumerate(caller.body):
        if instr.site == site and instr.op in (Opcode.CALL, Opcode.ICALL):
            return index
    raise InlineError(f"call site {site} not found in {caller.name}")


def expand_call_site(
    module: ILModule, caller_name: str, site: int
) -> ExpansionRecord:
    """Inline the callee of call site ``site`` into ``caller_name``.

    The callee's *current* body is duplicated — under the linear-order
    discipline all expansions into the callee are already done, so one
    physical expansion here realizes the whole chain (§2.7).
    """
    caller = module.functions[caller_name]
    index = _find_call(caller, site)
    call = caller.body[index]
    if call.op is not Opcode.CALL:
        raise InlineError(f"site {site} is an indirect call; cannot expand")
    callee = module.functions.get(call.name or "")
    if callee is None:
        raise InlineError(f"callee {call.name!r} has no available body")
    if callee.name == caller.name:
        raise InlineError(f"cannot expand self-recursive call in {caller.name}")
    if len(call.args) != len(callee.params):
        raise InlineError(
            f"site {site}: {len(call.args)} args for {len(callee.params)} params"
        )
    if call.dst is not None:
        # A valueless RET spliced into a value-consuming call would
        # leave call.dst unwritten — the VM's CALL writes the register
        # unconditionally, so expansion would silently change semantics
        # (the destination keeps whatever stale value it held).
        for instr in callee.body:
            if instr.op is Opcode.RET and instr.a is None:
                raise InlineError(
                    f"site {site}: callee {callee.name!r} has a valueless"
                    " return but the call consumes a result; expansion"
                    " would leave the destination register unwritten"
                )

    prefix = f"{callee.name}@{site}"
    record = ExpansionRecord(site, caller.name, callee.name)

    # --- task 2 prep: build renaming maps (path-qualified names) -----
    reg_map: dict[str, str] = {}
    for param in callee.params:
        reg_map[param] = f"{prefix}/{param}"
    label_map: dict[str, str] = {}
    slot_map: dict[str, str] = {}
    for instr in callee.body:
        if instr.dst is not None and instr.dst not in reg_map:
            reg_map[instr.dst] = f"{prefix}/{instr.dst}"
        for reg in instr.source_regs():
            if reg not in reg_map:
                reg_map[reg] = f"{prefix}/{reg}"
        if instr.op is Opcode.LABEL and instr.label not in label_map:
            label_map[instr.label] = f"{prefix}/{instr.label}"
    return_label = f"{prefix}/return"

    # --- task 3: symbol table (frame slot) updates --------------------
    for slot in callee.slots.values():
        new_name = f"{prefix}/{slot.name}"
        slot_map[slot.name] = new_name
        caller.add_slot(new_name, slot.size, slot.align)

    # --- task 1: duplicate, rename, rewrite returns -------------------
    spliced: list[Instr] = []
    for param, arg in zip(callee.params, call.args):
        target = reg_map[param]
        if isinstance(arg, str):
            spliced.append(Instr(Opcode.MOV, dst=target, a=arg))
        else:
            spliced.append(Instr(Opcode.CONST, dst=target, a=arg))
    for instr in callee.body:
        clone = instr.copy()
        if clone.op is Opcode.RET:
            value = clone.a
            if value is not None and isinstance(value, str):
                value = reg_map.get(value, value)
            if call.dst is not None and value is not None:
                if isinstance(value, str):
                    spliced.append(Instr(Opcode.MOV, dst=call.dst, a=value))
                else:
                    spliced.append(Instr(Opcode.CONST, dst=call.dst, a=value))
            spliced.append(Instr(Opcode.JUMP, label=return_label))
            continue
        clone.replace_regs(reg_map)
        clone.retarget_labels(label_map)
        if clone.op is Opcode.FRAME:
            clone.name = slot_map[clone.name]
        elif clone.op is Opcode.LABEL:
            pass  # renamed via retarget_labels
        elif clone.op in (Opcode.CALL, Opcode.ICALL):
            new_site = module.new_site_id()
            record.copied_sites[clone.site] = new_site
            clone.site = new_site
        spliced.append(clone)
    spliced.append(Instr(Opcode.LABEL, label=return_label))

    caller.body[index : index + 1] = spliced
    caller.layout_frame()  # frame sizes are updated after each expansion
    real = sum(1 for instr in spliced if is_real(instr))
    record.added_instructions = real - 1  # the call itself went away
    record.added_labels = len(spliced) - real
    return record
