"""Linearization of the call graph (§3.3).

Inline expansion is constrained to follow a linear order: X may be
inlined into Y only when X precedes Y in the sequence. This minimizes
the number of physical expansions (§2.7) and enables a definition
cache with a write-back policy, because all expansions *into* X finish
before any expansion *of* X.

Two orders are provided:

- ``"weight"`` — the paper's heuristic verbatim: place functions
  randomly, then sort by execution count, most frequent first. Hot
  functions are usually called by colder ones, and cycle-laden graphs
  have no usable levels (§3.3).
- ``"hybrid"`` (default) — callees before callers on the acyclic
  condensation of the *direct* call graph, with members of a cycle
  ordered by execution count. This realizes the paper's stated goal
  ("functions which tend to be absorbed by other functions should be
  placed in front of the list" — e.g. leaf functions first) exactly on
  the acyclic part, while falling back to the weight heuristic inside
  recursive cliques. It repairs weight ties between a hot caller and
  its equally-hot callee, which otherwise block the arc arbitrarily.

The ablation benchmark ``bench_ablation_linearization`` compares both.
"""

from __future__ import annotations

import random

from repro.callgraph.cycles import find_sccs
from repro.callgraph.graph import CallGraph
from repro.il.instructions import Opcode
from repro.il.module import ILModule
from repro.profiler.profile import ProfileData


def _weight_order(module: ILModule, profile: ProfileData, seed: int) -> list[str]:
    names = list(module.functions)
    rng = random.Random(seed)
    rng.shuffle(names)
    names.sort(key=lambda name: -profile.node_weight(name))
    return names


def _direct_call_graph(module: ILModule) -> CallGraph:
    """Static call graph over direct user-function calls only.

    The worst-case ``$$$``/``###`` closure is deliberately omitted: it
    merges every external-calling function into one giant cycle, which
    is correct for hazard detection but useless for ordering.
    """
    graph = CallGraph(module.entry)
    for name in module.functions:
        graph.add_node(name)
    seen: set[tuple[str, str]] = set()
    for caller, instr in module.call_sites():
        if instr.op is Opcode.CALL and instr.name in module.functions:
            key = (caller, instr.name)
            if key not in seen:
                seen.add(key)
                graph.add_synthetic_arc(caller, instr.name)
    return graph


def _hybrid_order(module: ILModule, profile: ProfileData, seed: int) -> list[str]:
    graph = _direct_call_graph(module)
    rng = random.Random(seed)
    order: list[str] = []
    for component in find_sccs(graph):  # callee-first over the condensation
        members = [name for name in component if name in module.functions]
        rng.shuffle(members)
        members.sort(key=lambda name: -profile.node_weight(name))
        order.extend(members)
    return order


def linearize(
    module: ILModule,
    profile: ProfileData,
    seed: int = 0,
    method: str = "hybrid",
) -> list[str]:
    """Return function names in linear order (candidates-first).

    The initial random placement only breaks ties among functions with
    equal keys; a fixed seed keeps runs deterministic.
    """
    if method == "weight":
        return _weight_order(module, profile, seed)
    if method == "hybrid":
        return _hybrid_order(module, profile, seed)
    raise ValueError(f"unknown linearization method {method!r}")


def order_index(sequence: list[str]) -> dict[str, int]:
    """Map each function name to its position in the linear sequence."""
    return {name: index for index, name in enumerate(sequence)}
