"""Token definitions for the C-subset lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import UNKNOWN_LOCATION, SourceLocation


class TokenKind(enum.Enum):
    """Lexical category of a token."""

    IDENT = "identifier"
    KEYWORD = "keyword"
    INT_CONST = "integer-constant"
    CHAR_CONST = "character-constant"
    STRING = "string-literal"
    PUNCT = "punctuator"
    EOF = "end-of-file"


#: Reserved words of the C subset. ``inline`` is accepted as a hint
#: (the GNU-style programmer annotation discussed in the paper, §1.2);
#: ``static`` and ``extern`` are parsed and ignored.
KEYWORDS = frozenset(
    {
        "break",
        "case",
        "char",
        "continue",
        "default",
        "do",
        "else",
        "extern",
        "for",
        "if",
        "inline",
        "int",
        "return",
        "sizeof",
        "static",
        "struct",
        "switch",
        "void",
        "while",
    }
)

#: Multi-character punctuators, longest first so the lexer can use
#: maximal munch by trying each length in order.
PUNCTUATORS_3 = ("<<=", ">>=", "...")
PUNCTUATORS_2 = (
    "->",
    "++",
    "--",
    "<<",
    ">>",
    "<=",
    ">=",
    "==",
    "!=",
    "&&",
    "||",
    "+=",
    "-=",
    "*=",
    "/=",
    "%=",
    "&=",
    "^=",
    "|=",
)
PUNCTUATORS_1 = tuple("[](){}.&*+-~!/%<>^|?:;=,#")


@dataclass(frozen=True, slots=True)
class Token:
    """A single lexical token.

    ``value`` holds the decoded payload: an ``int`` for integer and
    character constants, the decoded ``str`` body for string literals,
    and the spelling itself for identifiers, keywords, and punctuators.
    """

    kind: TokenKind
    spelling: str
    value: int | str | None = None
    location: SourceLocation = field(default=UNKNOWN_LOCATION)

    def is_keyword(self, word: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.spelling == word

    def is_punct(self, punct: str) -> bool:
        return self.kind is TokenKind.PUNCT and self.spelling == punct

    def __str__(self) -> str:
        if self.kind is TokenKind.EOF:
            return "<eof>"
        return self.spelling
