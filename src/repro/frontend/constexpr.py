"""Compile-time evaluation of integer constant expressions.

Used by the parser for array bounds and ``case`` labels, and by the
optimizer's constant folder for shared arithmetic semantics: all
arithmetic wraps to 32-bit two's complement, exactly like the VM.
"""

from __future__ import annotations

from repro.errors import SemanticError, SourceLocation
from repro.frontend import ast

INT_MIN = -(2**31)
INT_MAX = 2**31 - 1
_MASK = 0xFFFFFFFF


def wrap32(value: int) -> int:
    """Wrap an unbounded Python int to signed 32-bit two's complement."""
    value &= _MASK
    return value - 0x100000000 if value > INT_MAX else value


def apply_binary(op: str, left: int, right: int) -> int:
    """Evaluate ``left op right`` with C semantics on 32-bit ints.

    Raises ZeroDivisionError for division/modulo by zero so callers can
    decide whether that is a compile-time error (constant expressions)
    or must be left for runtime (the constant folder).
    """
    if op == "+":
        return wrap32(left + right)
    if op == "-":
        return wrap32(left - right)
    if op == "*":
        return wrap32(left * right)
    if op == "/":
        # C division truncates toward zero.
        quotient = abs(left) // abs(right)
        return wrap32(-quotient if (left < 0) != (right < 0) else quotient)
    if op == "%":
        return wrap32(left - apply_binary("/", left, right) * right)
    if op == "<<":
        return wrap32(left << (right & 31))
    if op == ">>":
        # Arithmetic shift on signed values.
        return wrap32(left >> (right & 31))
    if op == "&":
        return wrap32(left & right)
    if op == "|":
        return wrap32(left | right)
    if op == "^":
        return wrap32(left ^ right)
    if op == "<":
        return 1 if left < right else 0
    if op == ">":
        return 1 if left > right else 0
    if op == "<=":
        return 1 if left <= right else 0
    if op == ">=":
        return 1 if left >= right else 0
    if op == "==":
        return 1 if left == right else 0
    if op == "!=":
        return 1 if left != right else 0
    if op == "&&":
        return 1 if left and right else 0
    if op == "||":
        return 1 if left or right else 0
    raise SemanticError(f"operator {op!r} not allowed in constant expression")


def apply_unary(op: str, value: int) -> int:
    if op == "-":
        return wrap32(-value)
    if op == "+":
        return value
    if op == "~":
        return wrap32(~value)
    if op == "!":
        return 0 if value else 1
    raise SemanticError(f"unary operator {op!r} not allowed in constant expression")


def eval_const_expr(expr: ast.Expr, location: SourceLocation | None = None) -> int:
    """Evaluate an AST expression that must be an integer constant."""
    where = location or expr.location
    if isinstance(expr, ast.IntLiteral):
        return wrap32(expr.value)
    if isinstance(expr, ast.Unary):
        if expr.op == "sizeof":
            operand = expr.operand
            if operand is not None and operand.ctype is not None:
                return operand.ctype.size()
            raise SemanticError("sizeof expression not constant here", where)
        return apply_unary(expr.op, eval_const_expr(expr.operand, where))
    if isinstance(expr, ast.Binary):
        left = eval_const_expr(expr.left, where)
        if expr.op == "&&":
            return eval_const_expr(expr.right, where) and 1 if left else 0
        if expr.op == "||":
            return 1 if left else (1 if eval_const_expr(expr.right, where) else 0)
        right = eval_const_expr(expr.right, where)
        try:
            return apply_binary(expr.op, left, right)
        except ZeroDivisionError:
            raise SemanticError("division by zero in constant expression", where) from None
    if isinstance(expr, ast.Conditional):
        cond = eval_const_expr(expr.cond, where)
        branch = expr.then if cond else expr.otherwise
        return eval_const_expr(branch, where)
    if isinstance(expr, ast.SizeofType):
        if expr.target_type is None:
            raise SemanticError("sizeof of unresolved type", where)
        return expr.target_type.size()
    if isinstance(expr, ast.Cast):
        value = eval_const_expr(expr.operand, where)
        target = expr.target_type
        if target is not None and target.is_integer and target.size() == 1:
            value &= 0xFF
            if value > 127:
                value -= 256
        return value
    raise SemanticError("expression is not an integer constant", where)
