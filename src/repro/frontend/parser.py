"""Recursive-descent parser for the C subset.

Grammar summary (see DESIGN.md §4 for the supported subset):

    translation-unit := (struct-definition | function | global-var)*
    declaration      := decl-specifiers declarator ('=' initializer)?
                        (',' declarator ('=' initializer)?)* ';'
    function         := decl-specifiers declarator compound-statement

Expressions implement the full C precedence ladder including the comma
operator, conditional expressions, and compound assignment.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParseError, SourceLocation
from repro.frontend import ast
from repro.frontend.constexpr import eval_const_expr
from repro.frontend.lexer import tokenize
from repro.frontend.tokens import Token, TokenKind
from repro.frontend.typesys import (
    CHAR,
    INT,
    VOID,
    ArrayType,
    CType,
    FunctionSignature,
    FunctionType,
    PointerType,
    StructType,
    complete_struct,
)

#: Binary operator precedence, higher binds tighter.
_BINARY_PRECEDENCE = {
    "*": 10,
    "/": 10,
    "%": 10,
    "+": 9,
    "-": 9,
    "<<": 8,
    ">>": 8,
    "<": 7,
    ">": 7,
    "<=": 7,
    ">=": 7,
    "==": 6,
    "!=": 6,
    "&": 5,
    "^": 4,
    "|": 3,
    "&&": 2,
    "||": 1,
}

_ASSIGN_OPS = ("=", "+=", "-=", "*=", "/=", "%=", "&=", "^=", "|=", "<<=", ">>=")

_TYPE_KEYWORDS = ("int", "char", "void", "struct")
_STORAGE_KEYWORDS = ("static", "extern", "inline")


@dataclass
class _Declarator:
    """Result of parsing one declarator: a name and its full type."""

    name: str
    type: CType
    param_names: tuple[str, ...] = ()
    location: SourceLocation = SourceLocation()


class Parser:
    """Parses one preprocessed source buffer into a TranslationUnit."""

    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0
        self._structs: dict[str, StructType] = {}
        #: Names that have been declared as functions, used only to give
        #: better diagnostics; resolution happens in semantic analysis.
        self._unit = ast.TranslationUnit()

    # ------------------------------------------------------------------
    # token helpers

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _next(self) -> Token:
        token = self._peek()
        if token.kind is not TokenKind.EOF:
            self._pos += 1
        return token

    def _at_punct(self, punct: str) -> bool:
        return self._peek().is_punct(punct)

    def _at_keyword(self, word: str) -> bool:
        return self._peek().is_keyword(word)

    def _accept_punct(self, punct: str) -> bool:
        if self._at_punct(punct):
            self._next()
            return True
        return False

    def _accept_keyword(self, word: str) -> bool:
        if self._at_keyword(word):
            self._next()
            return True
        return False

    def _expect_punct(self, punct: str) -> Token:
        token = self._peek()
        if not token.is_punct(punct):
            raise ParseError(f"expected {punct!r}, found {token}", token.location)
        return self._next()

    def _expect_keyword(self, word: str) -> Token:
        token = self._peek()
        if not token.is_keyword(word):
            raise ParseError(f"expected {word!r}, found {token}", token.location)
        return self._next()

    def _expect_ident(self) -> Token:
        token = self._peek()
        if token.kind is not TokenKind.IDENT:
            raise ParseError(f"expected identifier, found {token}", token.location)
        return self._next()

    # ------------------------------------------------------------------
    # top level

    def parse(self) -> ast.TranslationUnit:
        while self._peek().kind is not TokenKind.EOF:
            self._top_level()
        self._unit.structs = dict(self._structs)
        return self._unit

    def _top_level(self) -> None:
        location = self._peek().location
        inline_hint = False
        while self._peek().spelling in _STORAGE_KEYWORDS and self._peek().kind is TokenKind.KEYWORD:
            if self._peek().spelling == "inline":
                inline_hint = True
            self._next()
        if not self._at_type_start():
            raise ParseError(f"expected declaration, found {self._peek()}", location)
        base = self._base_type(allow_definition=True)
        # A bare "struct Tag { ... };" or "struct Tag;" declaration.
        if self._accept_punct(";"):
            return
        first = self._declarator(base)
        if isinstance(first.type, FunctionType) and self._at_punct("{"):
            self._function_definition(first, inline_hint)
            return
        self._finish_global_declaration(first)
        while self._accept_punct(","):
            self._finish_global_declaration(self._declarator(base))
        self._expect_punct(";")

    def _finish_global_declaration(self, decl: _Declarator) -> None:
        if isinstance(decl.type, FunctionType):
            signature = FunctionSignature(decl.name, decl.type, decl.param_names)
            self._unit.declared_only.setdefault(decl.name, signature)
            return
        init: ast.Initializer | None = None
        if self._accept_punct("="):
            init = self._initializer()
        var_type = self._complete_array_from_init(decl.type, init, decl.location)
        self._unit.globals.append(
            ast.GlobalVar(decl.name, var_type, init, location=decl.location)
        )

    def _function_definition(self, decl: _Declarator, inline_hint: bool) -> None:
        assert isinstance(decl.type, FunctionType)
        params = [
            ast.Param(name, ptype, location=decl.location)
            for name, ptype in zip(decl.param_names, decl.type.param_types)
        ]
        signature = FunctionSignature(decl.name, decl.type, decl.param_names, inline_hint)
        body = self._compound_statement()
        self._unit.functions.append(
            ast.FunctionDef(
                decl.name,
                signature,
                params,
                body,
                inline_hint,
                location=decl.location,
            )
        )

    # ------------------------------------------------------------------
    # types and declarators

    def _at_type_start(self) -> bool:
        token = self._peek()
        return token.kind is TokenKind.KEYWORD and token.spelling in _TYPE_KEYWORDS

    def _base_type(self, allow_definition: bool = False) -> CType:
        token = self._peek()
        if self._accept_keyword("int"):
            return INT
        if self._accept_keyword("char"):
            return CHAR
        if self._accept_keyword("void"):
            return VOID
        if self._accept_keyword("struct"):
            return self._struct_type(allow_definition)
        raise ParseError(f"expected type, found {token}", token.location)

    def _struct_type(self, allow_definition: bool) -> CType:
        tag_token = self._expect_ident()
        tag = tag_token.spelling
        # Get-or-create the (possibly still incomplete) type object now,
        # so self-referential members resolve to the same instance that
        # complete_struct later fills in.
        struct = self._structs.get(tag)
        if struct is None:
            struct = StructType(tag)
            self._structs[tag] = struct
        if self._at_punct("{"):
            if not allow_definition:
                raise ParseError(
                    "struct definition not allowed here", tag_token.location
                )
            if struct.fields:
                raise ParseError(
                    f"redefinition of struct {tag!r}", tag_token.location
                )
            self._next()
            members: list[tuple[str, CType]] = []
            while not self._accept_punct("}"):
                member_base = self._base_type()
                while True:
                    member_decl = self._declarator(member_base)
                    if isinstance(member_decl.type, FunctionType):
                        raise ParseError(
                            "function member in struct", member_decl.location
                        )
                    members.append((member_decl.name, member_decl.type))
                    if not self._accept_punct(","):
                        break
                self._expect_punct(";")
            complete_struct(struct, members)
        return struct

    def _declarator(self, base: CType) -> _Declarator:
        """Parse pointers, a (possibly parenthesized) name, and suffixes."""
        ctype = base
        while self._accept_punct("*"):
            ctype = PointerType(ctype)
        if self._accept_punct("("):
            # Function-pointer style declarator: (*name), (**name), or
            # (*name[N]) — each extra star adds a pointer level.
            self._expect_punct("*")
            extra_stars = 0
            while self._accept_punct("*"):
                extra_stars += 1
            name_token = self._expect_ident()
            array_lengths: list[int] = []
            while self._accept_punct("["):
                array_lengths.append(self._array_length())
            self._expect_punct(")")
            param_types, param_names = self._parameter_list()
            fn_type: CType = PointerType(FunctionType(ctype, tuple(param_types)))
            for _ in range(extra_stars):
                fn_type = PointerType(fn_type)
            for length in reversed(array_lengths):
                fn_type = ArrayType(fn_type, length)
            return _Declarator(
                name_token.spelling, fn_type, tuple(param_names), name_token.location
            )
        name_token = self._expect_ident()
        if self._at_punct("("):
            param_types, param_names = self._parameter_list()
            return _Declarator(
                name_token.spelling,
                FunctionType(ctype, tuple(param_types)),
                tuple(param_names),
                name_token.location,
            )
        lengths: list[int] = []
        unsized_first = False
        while self._accept_punct("["):
            if self._at_punct("]") and not lengths:
                unsized_first = True
                self._next()
                continue
            lengths.append(self._array_length())
        for length in reversed(lengths):
            ctype = ArrayType(ctype, length)
        if unsized_first:
            # int a[] = {...}: length completed from the initializer later;
            # encode as length -1 placeholder.
            ctype = ArrayType(ctype, -1)
        return _Declarator(name_token.spelling, ctype, (), name_token.location)

    def _array_length(self) -> int:
        location = self._peek().location
        expr = self._conditional()
        self._expect_punct("]")
        length = eval_const_expr(expr, location)
        if length <= 0:
            raise ParseError(f"array length must be positive, got {length}", location)
        return length

    def _parameter_list(self) -> tuple[list[CType], list[str]]:
        self._expect_punct("(")
        types: list[CType] = []
        names: list[str] = []
        if self._accept_punct(")"):
            return types, names
        if self._at_keyword("void") and self._peek(1).is_punct(")"):
            self._next()
            self._next()
            return types, names
        while True:
            base = self._base_type()
            decl = self._parameter_declarator(base)
            ptype = decl.type
            if isinstance(ptype, ArrayType):
                ptype = PointerType(ptype.element)  # arrays decay in params
            if isinstance(ptype, FunctionType):
                ptype = PointerType(ptype)
            types.append(ptype)
            names.append(decl.name)
            if not self._accept_punct(","):
                break
        self._expect_punct(")")
        return types, names

    def _parameter_declarator(self, base: CType) -> _Declarator:
        ctype = base
        while self._accept_punct("*"):
            ctype = PointerType(ctype)
        if self._accept_punct("("):
            self._expect_punct("*")
            name_token = self._expect_ident()
            self._expect_punct(")")
            param_types, _ = self._parameter_list()
            return _Declarator(
                name_token.spelling,
                PointerType(FunctionType(ctype, tuple(param_types))),
                (),
                name_token.location,
            )
        name_token = self._expect_ident()
        lengths = []
        saw_unsized = False
        while self._accept_punct("["):
            if self._at_punct("]"):
                self._next()
                saw_unsized = True
                continue
            lengths.append(self._array_length())
        for length in reversed(lengths):
            ctype = ArrayType(ctype, length)
        if saw_unsized or lengths:
            # Parameter arrays decay to a pointer to the element type.
            element = ctype.element if isinstance(ctype, ArrayType) else ctype
            ctype = PointerType(element)
        return _Declarator(name_token.spelling, ctype, (), name_token.location)

    def _type_name(self) -> CType:
        """Parse a type-name as used in casts and sizeof."""
        ctype = self._base_type()
        while self._accept_punct("*"):
            ctype = PointerType(ctype)
        if self._accept_punct("("):
            # Abstract function-pointer type: (*)(params) or (**)(params).
            self._expect_punct("*")
            extra_stars = 0
            while self._accept_punct("*"):
                extra_stars += 1
            self._expect_punct(")")
            param_types, _ = self._parameter_list()
            ctype = PointerType(FunctionType(ctype, tuple(param_types)))
            for _ in range(extra_stars):
                ctype = PointerType(ctype)
        return ctype

    @staticmethod
    def _complete_array_from_init(
        ctype: CType, init: ast.Initializer | None, location: SourceLocation
    ) -> CType:
        if not (isinstance(ctype, ArrayType) and ctype.length == -1):
            return ctype
        if isinstance(init, ast.InitList):
            return ArrayType(ctype.element, max(len(init.items), 1))
        if isinstance(init, ast.StringLiteral):
            return ArrayType(ctype.element, len(init.value) + 1)
        raise ParseError("unsized array needs an initializer", location)

    # ------------------------------------------------------------------
    # statements

    def _compound_statement(self) -> ast.Block:
        open_token = self._expect_punct("{")
        statements: list[ast.Stmt] = []
        while not self._accept_punct("}"):
            if self._peek().kind is TokenKind.EOF:
                raise ParseError("unterminated block", open_token.location)
            statements.extend(self._block_item())
        return ast.Block(statements, location=open_token.location)

    def _block_item(self) -> list[ast.Stmt]:
        if self._at_type_start() or (
            self._peek().kind is TokenKind.KEYWORD
            and self._peek().spelling in _STORAGE_KEYWORDS
        ):
            return self._local_declaration()
        return [self._statement()]

    def _local_declaration(self) -> list[ast.Stmt]:
        while (
            self._peek().kind is TokenKind.KEYWORD
            and self._peek().spelling in _STORAGE_KEYWORDS
        ):
            self._next()
        base = self._base_type(allow_definition=True)
        if self._accept_punct(";"):
            return []  # bare struct definition at block scope
        decls: list[ast.Stmt] = []
        while True:
            declarator = self._declarator(base)
            if isinstance(declarator.type, FunctionType):
                # Local function prototype: record and move on.
                self._unit.declared_only.setdefault(
                    declarator.name,
                    FunctionSignature(
                        declarator.name, declarator.type, declarator.param_names
                    ),
                )
            else:
                init = self._initializer() if self._accept_punct("=") else None
                var_type = self._complete_array_from_init(
                    declarator.type, init, declarator.location
                )
                decls.append(
                    ast.DeclStmt(
                        declarator.name, var_type, init, location=declarator.location
                    )
                )
            if not self._accept_punct(","):
                break
        self._expect_punct(";")
        return decls

    def _initializer(self) -> ast.Initializer:
        if self._at_punct("{"):
            open_token = self._next()
            items: list[ast.Expr | ast.InitList] = []
            while not self._accept_punct("}"):
                items.append(self._initializer())
                if not self._accept_punct(","):
                    self._expect_punct("}")
                    break
            return ast.InitList(items, location=open_token.location)
        return self._assignment()

    def _statement(self) -> ast.Stmt:
        token = self._peek()
        if token.is_punct("{"):
            return self._compound_statement()
        if token.is_punct(";"):
            self._next()
            return ast.EmptyStmt(location=token.location)
        if token.is_keyword("if"):
            return self._if_statement()
        if token.is_keyword("while"):
            return self._while_statement()
        if token.is_keyword("do"):
            return self._do_statement()
        if token.is_keyword("for"):
            return self._for_statement()
        if token.is_keyword("switch"):
            return self._switch_statement()
        if token.is_keyword("break"):
            self._next()
            self._expect_punct(";")
            return ast.Break(location=token.location)
        if token.is_keyword("continue"):
            self._next()
            self._expect_punct(";")
            return ast.Continue(location=token.location)
        if token.is_keyword("return"):
            self._next()
            value = None if self._at_punct(";") else self._expression()
            self._expect_punct(";")
            return ast.Return(value, location=token.location)
        expr = self._expression()
        self._expect_punct(";")
        return ast.ExprStmt(expr, location=token.location)

    def _if_statement(self) -> ast.Stmt:
        token = self._expect_keyword("if")
        self._expect_punct("(")
        cond = self._expression()
        self._expect_punct(")")
        then = self._statement()
        otherwise = self._statement() if self._accept_keyword("else") else None
        return ast.If(cond, then, otherwise, location=token.location)

    def _while_statement(self) -> ast.Stmt:
        token = self._expect_keyword("while")
        self._expect_punct("(")
        cond = self._expression()
        self._expect_punct(")")
        body = self._statement()
        return ast.While(cond, body, location=token.location)

    def _do_statement(self) -> ast.Stmt:
        token = self._expect_keyword("do")
        body = self._statement()
        self._expect_keyword("while")
        self._expect_punct("(")
        cond = self._expression()
        self._expect_punct(")")
        self._expect_punct(";")
        return ast.DoWhile(body, cond, location=token.location)

    def _for_statement(self) -> ast.Stmt:
        token = self._expect_keyword("for")
        self._expect_punct("(")
        init: ast.Stmt | None = None
        if self._at_type_start():
            decls = self._local_declaration()  # consumes the ';'
            init = ast.Block(decls, location=token.location) if len(decls) != 1 else decls[0]
        elif not self._accept_punct(";"):
            init = ast.ExprStmt(self._expression(), location=token.location)
            self._expect_punct(";")
        cond = None if self._at_punct(";") else self._expression()
        self._expect_punct(";")
        step = None if self._at_punct(")") else self._expression()
        self._expect_punct(")")
        body = self._statement()
        return ast.For(init, cond, step, body, location=token.location)

    def _switch_statement(self) -> ast.Stmt:
        token = self._expect_keyword("switch")
        self._expect_punct("(")
        scrutinee = self._expression()
        self._expect_punct(")")
        self._expect_punct("{")
        cases: list[ast.SwitchCase] = []
        seen_values: set[int] = set()
        seen_default = False
        while not self._accept_punct("}"):
            case_token = self._peek()
            values: list[int | None] = []
            while True:
                if self._accept_keyword("case"):
                    value = eval_const_expr(self._conditional(), case_token.location)
                    if value in seen_values:
                        raise ParseError(
                            f"duplicate case value {value}", case_token.location
                        )
                    seen_values.add(value)
                    values.append(value)
                    self._expect_punct(":")
                elif self._at_keyword("default"):
                    self._next()
                    if seen_default:
                        raise ParseError("duplicate default label", case_token.location)
                    seen_default = True
                    values.append(None)
                    self._expect_punct(":")
                else:
                    break
            if not values:
                raise ParseError(
                    f"expected 'case' or 'default', found {self._peek()}",
                    self._peek().location,
                )
            body: list[ast.Stmt] = []
            while not (
                self._at_keyword("case")
                or self._at_keyword("default")
                or self._at_punct("}")
            ):
                body.extend(self._block_item())
            # Multiple labels on one body share the body via fallthrough:
            # all but the last get an empty body falling through.
            for value in values[:-1]:
                cases.append(ast.SwitchCase(value, [], location=case_token.location))
            cases.append(ast.SwitchCase(values[-1], body, location=case_token.location))
        return ast.Switch(scrutinee, cases, location=token.location)

    # ------------------------------------------------------------------
    # expressions

    def _expression(self) -> ast.Expr:
        expr = self._assignment()
        while self._at_punct(","):
            token = self._next()
            right = self._assignment()
            expr = ast.Binary(",", expr, right, location=token.location)
        return expr

    def _assignment(self) -> ast.Expr:
        left = self._conditional()
        token = self._peek()
        if token.kind is TokenKind.PUNCT and token.spelling in _ASSIGN_OPS:
            self._next()
            right = self._assignment()
            return ast.Assign(token.spelling, left, right, location=token.location)
        return left

    def _conditional(self) -> ast.Expr:
        cond = self._binary(0)
        if self._at_punct("?"):
            token = self._next()
            then = self._expression()
            self._expect_punct(":")
            otherwise = self._conditional()
            return ast.Conditional(cond, then, otherwise, location=token.location)
        return cond

    def _binary(self, min_precedence: int) -> ast.Expr:
        left = self._unary()
        while True:
            token = self._peek()
            precedence = _BINARY_PRECEDENCE.get(token.spelling, 0)
            if token.kind is not TokenKind.PUNCT or precedence <= min_precedence:
                return left
            self._next()
            right = self._binary(precedence)
            left = ast.Binary(token.spelling, left, right, location=token.location)

    def _unary(self) -> ast.Expr:
        token = self._peek()
        if token.kind is TokenKind.PUNCT and token.spelling in ("-", "+", "~", "!", "&", "*"):
            self._next()
            return ast.Unary(token.spelling, self._unary(), location=token.location)
        if token.is_punct("++") or token.is_punct("--"):
            self._next()
            return ast.Unary(token.spelling, self._unary(), location=token.location)
        if token.is_keyword("sizeof"):
            self._next()
            if self._at_punct("(") and self._is_type_ahead(1):
                self._next()
                target = self._type_name()
                self._expect_punct(")")
                return ast.SizeofType(target, location=token.location)
            operand = self._unary()
            return ast.Unary("sizeof", operand, location=token.location)
        if token.is_punct("(") and self._is_type_ahead(1):
            self._next()
            target = self._type_name()
            self._expect_punct(")")
            operand = self._unary()
            return ast.Cast(target, operand, location=token.location)
        return self._postfix()

    def _is_type_ahead(self, offset: int) -> bool:
        token = self._peek(offset)
        return token.kind is TokenKind.KEYWORD and token.spelling in _TYPE_KEYWORDS

    def _postfix(self) -> ast.Expr:
        expr = self._primary()
        while True:
            token = self._peek()
            if token.is_punct("("):
                self._next()
                args: list[ast.Expr] = []
                if not self._at_punct(")"):
                    args.append(self._assignment())
                    while self._accept_punct(","):
                        args.append(self._assignment())
                self._expect_punct(")")
                expr = ast.Call(expr, args, location=token.location)
            elif token.is_punct("["):
                self._next()
                index = self._expression()
                self._expect_punct("]")
                expr = ast.Index(expr, index, location=token.location)
            elif token.is_punct("."):
                self._next()
                name = self._expect_ident()
                expr = ast.Member(expr, name.spelling, False, location=token.location)
            elif token.is_punct("->"):
                self._next()
                name = self._expect_ident()
                expr = ast.Member(expr, name.spelling, True, location=token.location)
            elif token.is_punct("++") or token.is_punct("--"):
                self._next()
                expr = ast.PostIncDec(token.spelling, expr, location=token.location)
            else:
                return expr

    def _primary(self) -> ast.Expr:
        token = self._peek()
        if token.kind is TokenKind.INT_CONST or token.kind is TokenKind.CHAR_CONST:
            self._next()
            assert isinstance(token.value, int)
            return ast.IntLiteral(token.value, location=token.location)
        if token.kind is TokenKind.STRING:
            self._next()
            assert isinstance(token.value, str)
            # Adjacent string literals concatenate, as in C.
            value = token.value
            while self._peek().kind is TokenKind.STRING:
                extra = self._next()
                assert isinstance(extra.value, str)
                value += extra.value
            return ast.StringLiteral(value, location=token.location)
        if token.kind is TokenKind.IDENT:
            self._next()
            return ast.Identifier(token.spelling, location=token.location)
        if token.is_punct("("):
            self._next()
            expr = self._expression()
            self._expect_punct(")")
            return expr
        raise ParseError(f"expected expression, found {token}", token.location)


def parse_translation_unit(
    text: str, filename: str = "<input>", obs=None
) -> ast.TranslationUnit:
    """Lex and parse preprocessed C-subset source text.

    ``obs`` is an optional :class:`repro.observability.Observability`;
    when given, the token count is reported into its metrics.
    """
    tokens = tokenize(text, filename)
    if obs is not None and obs.metrics.enabled:
        obs.metrics.inc("frontend.tokens_lexed", len(tokens))
    return Parser(tokens).parse()
