"""Abstract syntax tree for the C subset.

Nodes are plain mutable dataclasses. The parser fills in structure and
locations; semantic analysis (:mod:`repro.frontend.sema`) annotates
expressions with ``ctype`` and identifiers with their resolved symbol.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.errors import UNKNOWN_LOCATION, SourceLocation
from repro.frontend.typesys import CType, FunctionSignature, StructType


@dataclass
class Node:
    """Common base carrying a source location."""

    location: SourceLocation = field(default=UNKNOWN_LOCATION, kw_only=True)


# ----------------------------------------------------------------------
# expressions


@dataclass
class Expr(Node):
    """Base expression; ``ctype`` is set by semantic analysis."""

    ctype: Optional[CType] = field(default=None, kw_only=True)


@dataclass
class IntLiteral(Expr):
    value: int = 0


@dataclass
class StringLiteral(Expr):
    value: str = ""


@dataclass
class Identifier(Expr):
    """A name; ``symbol`` is filled in by semantic analysis."""

    name: str = ""
    symbol: object = None


@dataclass
class Unary(Expr):
    """Prefix operators: ``- ~ ! & *`` plus prefix ``++``/``--``."""

    op: str = ""
    operand: Expr | None = None


@dataclass
class PostIncDec(Expr):
    """Postfix ``++`` and ``--``."""

    op: str = ""
    operand: Expr | None = None


@dataclass
class Binary(Expr):
    """All binary operators, including short-circuit ``&&``/``||``."""

    op: str = ""
    left: Expr | None = None
    right: Expr | None = None


@dataclass
class Assign(Expr):
    """``=`` and compound assignments (``+=`` etc.)."""

    op: str = "="
    target: Expr | None = None
    value: Expr | None = None


@dataclass
class Conditional(Expr):
    cond: Expr | None = None
    then: Expr | None = None
    otherwise: Expr | None = None


@dataclass
class Call(Expr):
    """A call; ``callee`` may be an Identifier (direct) or any pointer
    expression (call through pointer, the paper's ``###`` case)."""

    callee: Expr | None = None
    args: list[Expr] = field(default_factory=list)


@dataclass
class Index(Expr):
    base: Expr | None = None
    index: Expr | None = None


@dataclass
class Member(Expr):
    """``base.name`` (arrow=False) or ``base->name`` (arrow=True)."""

    base: Expr | None = None
    name: str = ""
    arrow: bool = False


@dataclass
class Cast(Expr):
    target_type: CType | None = None
    operand: Expr | None = None


@dataclass
class SizeofType(Expr):
    target_type: CType | None = None


# ----------------------------------------------------------------------
# initializers


@dataclass
class InitList(Node):
    """Brace-enclosed initializer ``{ a, b, ... }`` for arrays/structs."""

    items: list[Union[Expr, "InitList"]] = field(default_factory=list)


Initializer = Union[Expr, InitList]


# ----------------------------------------------------------------------
# statements


@dataclass
class Stmt(Node):
    pass


@dataclass
class ExprStmt(Stmt):
    expr: Expr | None = None


@dataclass
class Block(Stmt):
    statements: list[Stmt] = field(default_factory=list)


@dataclass
class DeclStmt(Stmt):
    """A local variable declaration (one declarator)."""

    name: str = ""
    var_type: CType | None = None
    init: Initializer | None = None
    symbol: object = None


@dataclass
class If(Stmt):
    cond: Expr | None = None
    then: Stmt | None = None
    otherwise: Stmt | None = None


@dataclass
class While(Stmt):
    cond: Expr | None = None
    body: Stmt | None = None


@dataclass
class DoWhile(Stmt):
    body: Stmt | None = None
    cond: Expr | None = None


@dataclass
class For(Stmt):
    init: Stmt | None = None  # DeclStmt, ExprStmt, or None
    cond: Expr | None = None
    step: Expr | None = None
    body: Stmt | None = None


@dataclass
class SwitchCase(Node):
    """One arm of a switch; ``value`` is None for ``default:``."""

    value: int | None = None
    body: list[Stmt] = field(default_factory=list)


@dataclass
class Switch(Stmt):
    scrutinee: Expr | None = None
    cases: list[SwitchCase] = field(default_factory=list)


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class Return(Stmt):
    value: Expr | None = None


@dataclass
class EmptyStmt(Stmt):
    pass


# ----------------------------------------------------------------------
# top level


@dataclass
class Param(Node):
    name: str = ""
    param_type: CType | None = None


@dataclass
class FunctionDef(Node):
    name: str = ""
    signature: FunctionSignature | None = None
    params: list[Param] = field(default_factory=list)
    body: Block | None = None
    inline_hint: bool = False


@dataclass
class GlobalVar(Node):
    name: str = ""
    var_type: CType | None = None
    init: Initializer | None = None


@dataclass
class TranslationUnit(Node):
    """One parsed source file (after preprocessing)."""

    functions: list[FunctionDef] = field(default_factory=list)
    globals: list[GlobalVar] = field(default_factory=list)
    structs: dict[str, StructType] = field(default_factory=dict)
    #: Functions declared (prototype) but not defined in this unit.
    declared_only: dict[str, FunctionSignature] = field(default_factory=dict)

    def function(self, name: str) -> FunctionDef:
        for fn in self.functions:
            if fn.name == name:
                return fn
        raise KeyError(name)
