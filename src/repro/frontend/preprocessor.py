"""A miniature C preprocessor.

Supports the directives the workload programs need:

- ``#include "name"`` and ``#include <name>``, resolved against a
  mapping of virtual header names to header text,
- object-like and function-like ``#define`` (single-line bodies,
  single-line invocations), ``#undef``,
- ``#ifdef`` / ``#ifndef`` / ``#if`` / ``#elif`` / ``#else`` /
  ``#endif`` with a small constant-expression evaluator supporting
  integer literals, ``defined(X)``, ``!``, ``&&``, ``||``, comparisons,
  and parentheses,
- backslash line continuation and comment stripping inside directives.

Output is plain C text; the original line structure of included files is
flattened, which is acceptable because diagnostics carry the top-level
file name.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import PreprocessorError, SourceLocation

_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
_TOKEN_RE = re.compile(
    r"""[A-Za-z_][A-Za-z0-9_]*      # identifier
      | 0[xX][0-9a-fA-F]+ | \d+    # integer
      | "(?:[^"\\\n]|\\.)*"        # string
      | '(?:[^'\\\n]|\\.)'         # char
      | <<=|>>=|->|\+\+|--|<<|>>|<=|>=|==|!=|&&|\|\||[-+*/%&^|~!<>=?:;,.(){}\[\]\#]
      | \s+
    """,
    re.VERBOSE,
)

_MAX_EXPANSION_DEPTH = 64


@dataclass(frozen=True, slots=True)
class Macro:
    """A ``#define`` entry. ``params`` is None for object-like macros."""

    name: str
    body: str
    params: tuple[str, ...] | None = None

    @property
    def is_function_like(self) -> bool:
        return self.params is not None


def _split_tokens(text: str) -> list[str]:
    """Split ``text`` into preprocessor tokens, keeping whitespace runs."""
    tokens = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            # An unknown character (e.g. backslash): pass it through.
            tokens.append(text[pos])
            pos += 1
        else:
            tokens.append(match.group(0))
            pos = match.end()
    return tokens


def _strip_comments(line: str) -> str:
    """Remove ``//`` and single-line ``/* */`` comments from a directive."""
    line = re.sub(r"/\*.*?\*/", " ", line)
    index = line.find("//")
    if index >= 0:
        line = line[:index]
    return line


class Preprocessor:
    """Expands one top-level source buffer."""

    def __init__(
        self,
        headers: dict[str, str] | None = None,
        predefined: dict[str, str] | None = None,
    ):
        self._headers = dict(headers or {})
        self.macros: dict[str, Macro] = {}
        for name, body in (predefined or {}).items():
            self.macros[name] = Macro(name, body)

    # ------------------------------------------------------------------
    # driver

    def process(self, text: str, filename: str = "<input>") -> str:
        """Return the fully expanded text of ``text``."""
        output: list[str] = []
        self._process_buffer(text, filename, output, include_depth=0)
        return "\n".join(output) + "\n"

    def _process_buffer(
        self, text: str, filename: str, output: list[str], include_depth: int
    ) -> None:
        if include_depth > 16:
            raise PreprocessorError(f"#include nesting too deep in {filename}")
        lines = self._physical_lines(text)
        # Conditional stack entries: (active, seen_true, parent_active).
        cond_stack: list[list[bool]] = []
        for line_number, line in lines:
            location = SourceLocation(filename, line_number, 1)
            stripped = line.lstrip()
            active = all(entry[0] for entry in cond_stack)
            if stripped.startswith("#"):
                self._directive(
                    stripped[1:].strip(),
                    location,
                    output,
                    cond_stack,
                    active,
                    include_depth,
                )
            elif active:
                output.append(self._expand_line(line, location))
        if cond_stack:
            raise PreprocessorError(f"unterminated conditional in {filename}")

    @staticmethod
    def _physical_lines(text: str) -> list[tuple[int, str]]:
        """Join backslash continuations; keep original line numbers."""
        result = []
        pending = ""
        pending_start = 1
        for number, raw in enumerate(text.split("\n"), start=1):
            if not pending:
                pending_start = number
            if raw.endswith("\\"):
                pending += raw[:-1]
                continue
            result.append((pending_start, pending + raw))
            pending = ""
        if pending:
            result.append((pending_start, pending))
        return result

    # ------------------------------------------------------------------
    # directives

    def _directive(
        self,
        body: str,
        location: SourceLocation,
        output: list[str],
        cond_stack: list[list[bool]],
        active: bool,
        include_depth: int,
    ) -> None:
        body = _strip_comments(body).strip()
        if not body:
            return
        name, _, rest = body.partition(" ")
        rest = rest.strip()
        if name == "ifdef" or name == "ifndef":
            ident = rest.split()[0] if rest else ""
            if not ident:
                raise PreprocessorError(f"#{name} needs an identifier", location)
            truth = (ident in self.macros) == (name == "ifdef")
            cond_stack.append([active and truth, truth, active])
        elif name == "if":
            truth = bool(self._eval_condition(rest, location))
            cond_stack.append([active and truth, truth, active])
        elif name == "elif":
            if not cond_stack:
                raise PreprocessorError("#elif without #if", location)
            entry = cond_stack[-1]
            if entry[1]:
                entry[0] = False
            else:
                truth = bool(self._eval_condition(rest, location))
                entry[0] = entry[2] and truth
                entry[1] = truth
        elif name == "else":
            if not cond_stack:
                raise PreprocessorError("#else without #if", location)
            entry = cond_stack[-1]
            entry[0] = entry[2] and not entry[1]
            entry[1] = True
        elif name == "endif":
            if not cond_stack:
                raise PreprocessorError("#endif without #if", location)
            cond_stack.pop()
        elif not active:
            return
        elif name == "define":
            self._define(rest, location)
        elif name == "undef":
            ident = rest.split()[0] if rest else ""
            self.macros.pop(ident, None)
        elif name == "include":
            self._include(rest, location, output, include_depth)
        elif name == "pragma" or name == "error" and not active:
            return
        elif name == "error":
            raise PreprocessorError(f"#error {rest}", location)
        else:
            raise PreprocessorError(f"unknown directive #{name}", location)

    def _define(self, rest: str, location: SourceLocation) -> None:
        match = _IDENT_RE.match(rest)
        if match is None:
            raise PreprocessorError("#define needs a macro name", location)
        name = match.group(0)
        after = rest[match.end() :]
        if after.startswith("("):
            close = after.find(")")
            if close < 0:
                raise PreprocessorError("unterminated macro parameter list", location)
            param_text = after[1:close].strip()
            params = tuple(p.strip() for p in param_text.split(",")) if param_text else ()
            for param in params:
                if not _IDENT_RE.fullmatch(param):
                    raise PreprocessorError(f"bad macro parameter {param!r}", location)
            body = after[close + 1 :].strip()
            self.macros[name] = Macro(name, body, params)
        else:
            self.macros[name] = Macro(name, after.strip())

    def _include(
        self, rest: str, location: SourceLocation, output: list[str], include_depth: int
    ) -> None:
        rest = rest.strip()
        if rest.startswith('"') and rest.endswith('"') and len(rest) >= 2:
            header = rest[1:-1]
        elif rest.startswith("<") and rest.endswith(">") and len(rest) >= 2:
            header = rest[1:-1]
        else:
            raise PreprocessorError(f"malformed #include {rest!r}", location)
        if header not in self._headers:
            raise PreprocessorError(f"header {header!r} not found", location)
        self._process_buffer(self._headers[header], header, output, include_depth + 1)

    # ------------------------------------------------------------------
    # macro expansion

    def _expand_line(self, line: str, location: SourceLocation) -> str:
        return self._expand_tokens(_split_tokens(line), location, frozenset(), 0)

    def _expand_tokens(
        self,
        tokens: list[str],
        location: SourceLocation,
        hidden: frozenset[str],
        depth: int,
    ) -> str:
        if depth > _MAX_EXPANSION_DEPTH:
            raise PreprocessorError("macro expansion too deep", location)
        out: list[str] = []
        index = 0
        while index < len(tokens):
            token = tokens[index]
            macro = self.macros.get(token)
            if macro is None or token in hidden or self._in_literal(token):
                out.append(token)
                index += 1
                continue
            if macro.is_function_like:
                args, consumed = self._collect_arguments(tokens, index + 1, location)
                if args is None:  # not followed by '(': not an invocation
                    out.append(token)
                    index += 1
                    continue
                if len(args) != len(macro.params or ()) and not (
                    len(args) == 1 and args[0].strip() == "" and not macro.params
                ):
                    raise PreprocessorError(
                        f"macro {token} expects {len(macro.params or ())} argument(s),"
                        f" got {len(args)}",
                        location,
                    )
                expanded_args = [
                    self._expand_tokens(_split_tokens(arg), location, hidden, depth + 1)
                    for arg in args
                ]
                body = self._substitute(macro, expanded_args)
                out.append(
                    self._expand_tokens(
                        _split_tokens(body), location, hidden | {token}, depth + 1
                    )
                )
                index += consumed + 1
            else:
                out.append(
                    self._expand_tokens(
                        _split_tokens(macro.body), location, hidden | {token}, depth + 1
                    )
                )
                index += 1
        return "".join(out)

    @staticmethod
    def _in_literal(token: str) -> bool:
        return token.startswith('"') or token.startswith("'")

    @staticmethod
    def _collect_arguments(
        tokens: list[str], start: int, location: SourceLocation
    ) -> tuple[list[str] | None, int]:
        """Collect ``(a, b, ...)`` starting at ``tokens[start]``.

        Returns (argument texts, tokens consumed including parens), or
        (None, 0) when the macro name is not followed by ``(``.
        """
        index = start
        while index < len(tokens) and tokens[index].isspace():
            index += 1
        if index >= len(tokens) or tokens[index] != "(":
            return None, 0
        depth = 0
        args: list[str] = []
        current: list[str] = []
        while index < len(tokens):
            token = tokens[index]
            if token == "(":
                depth += 1
                if depth > 1:
                    current.append(token)
            elif token == ")":
                depth -= 1
                if depth == 0:
                    args.append("".join(current).strip())
                    return args, index - start + 1
                current.append(token)
            elif token == "," and depth == 1:
                args.append("".join(current).strip())
                current = []
            else:
                current.append(token)
            index += 1
        raise PreprocessorError("unterminated macro invocation", location)

    @staticmethod
    def _substitute(macro: Macro, args: list[str]) -> str:
        body_tokens = _split_tokens(macro.body)
        mapping = dict(zip(macro.params or (), args))
        return "".join(mapping.get(token, token) for token in body_tokens)

    # ------------------------------------------------------------------
    # #if expression evaluation

    def _eval_condition(self, text: str, location: SourceLocation) -> int:
        # Resolve defined(X) / defined X before macro expansion.
        def replace_defined(match: re.Match[str]) -> str:
            name = match.group(1) or match.group(2)
            return "1" if name in self.macros else "0"

        text = re.sub(
            r"defined\s*(?:\(\s*([A-Za-z_]\w*)\s*\)|([A-Za-z_]\w*))",
            replace_defined,
            text,
        )
        expanded = self._expand_tokens(_split_tokens(text), location, frozenset(), 0)
        # Any identifier left after expansion evaluates to 0, as in C.
        expanded = _IDENT_RE.sub("0", expanded)
        return _ConditionParser(expanded, location).parse()


class _ConditionParser:
    """Recursive-descent evaluator for #if constant expressions."""

    def __init__(self, text: str, location: SourceLocation):
        self._tokens = [t for t in _split_tokens(text) if not t.isspace()]
        self._pos = 0
        self._location = location

    def parse(self) -> int:
        value = self._or()
        if self._pos != len(self._tokens):
            raise PreprocessorError(
                f"trailing tokens in #if expression: {self._tokens[self._pos:]}",
                self._location,
            )
        return value

    def _peek(self) -> str:
        return self._tokens[self._pos] if self._pos < len(self._tokens) else ""

    def _next(self) -> str:
        token = self._peek()
        self._pos += 1
        return token

    def _or(self) -> int:
        value = self._and()
        while self._peek() == "||":
            self._next()
            right = self._and()
            value = 1 if value or right else 0
        return value

    def _and(self) -> int:
        value = self._compare()
        while self._peek() == "&&":
            self._next()
            right = self._compare()
            value = 1 if value and right else 0
        return value

    def _compare(self) -> int:
        value = self._additive()
        while self._peek() in ("==", "!=", "<", ">", "<=", ">="):
            op = self._next()
            right = self._additive()
            ops = {
                "==": value == right,
                "!=": value != right,
                "<": value < right,
                ">": value > right,
                "<=": value <= right,
                ">=": value >= right,
            }
            value = 1 if ops[op] else 0
        return value

    def _additive(self) -> int:
        value = self._unary()
        while self._peek() in ("+", "-", "*", "/", "%"):
            op = self._next()
            right = self._unary()
            if op == "+":
                value += right
            elif op == "-":
                value -= right
            elif op == "*":
                value *= right
            elif right == 0:
                raise PreprocessorError("division by zero in #if", self._location)
            elif op == "/":
                value //= right
            else:
                value %= right
        return value

    def _unary(self) -> int:
        token = self._peek()
        if token == "!":
            self._next()
            return 0 if self._unary() else 1
        if token == "-":
            self._next()
            return -self._unary()
        if token == "+":
            self._next()
            return self._unary()
        if token == "(":
            self._next()
            value = self._or()
            if self._next() != ")":
                raise PreprocessorError("expected ')' in #if", self._location)
            return value
        if token and (token[0].isdigit()):
            self._next()
            return int(token, 0)
        raise PreprocessorError(f"bad token {token!r} in #if expression", self._location)


def preprocess(
    text: str,
    filename: str = "<input>",
    headers: dict[str, str] | None = None,
    predefined: dict[str, str] | None = None,
) -> str:
    """Convenience wrapper around :class:`Preprocessor`."""
    return Preprocessor(headers, predefined).process(text, filename)
