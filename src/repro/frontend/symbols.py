"""Symbols and scopes for semantic analysis."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SemanticError, SourceLocation
from repro.frontend.typesys import CType, FunctionSignature


@dataclass(eq=False)
class VarSymbol:
    """A declared variable: global, local, or parameter."""

    name: str
    ctype: CType
    kind: str  # "global" | "local" | "param"
    #: Unique within the enclosing function (locals/params) or program
    #: (globals); lets shadowed names coexist after lowering.
    uid: int = 0
    address_taken: bool = False
    location: SourceLocation = field(default_factory=SourceLocation)

    @property
    def is_global(self) -> bool:
        return self.kind == "global"


@dataclass(eq=False)
class FunctionSymbol:
    """A declared or defined function."""

    signature: FunctionSignature
    defined: bool = False
    #: True when only a prototype was seen — the paper's *external*
    #: function whose body is unavailable to inline expansion.
    address_taken: bool = False
    location: SourceLocation = field(default_factory=SourceLocation)

    @property
    def name(self) -> str:
        return self.signature.name

    @property
    def is_external(self) -> bool:
        return not self.defined


Symbol = VarSymbol | FunctionSymbol


class Scope:
    """One lexical scope in the chain."""

    def __init__(self, parent: "Scope | None" = None):
        self.parent = parent
        self._entries: dict[str, Symbol] = {}

    def declare(self, symbol: Symbol) -> None:
        name = symbol.name
        if name in self._entries:
            existing = self._entries[name]
            # Re-declaring a function prototype is fine.
            if isinstance(existing, FunctionSymbol) and isinstance(
                symbol, FunctionSymbol
            ):
                if symbol.defined and existing.defined:
                    raise SemanticError(
                        f"redefinition of function {name!r}", symbol.location
                    )
                existing.defined = existing.defined or symbol.defined
                return
            raise SemanticError(f"redeclaration of {name!r}", symbol.location)
        self._entries[name] = symbol

    def lookup(self, name: str) -> Symbol | None:
        scope: Scope | None = self
        while scope is not None:
            symbol = scope._entries.get(name)
            if symbol is not None:
                return symbol
            scope = scope.parent
        return None

    def lookup_local(self, name: str) -> Symbol | None:
        return self._entries.get(name)
