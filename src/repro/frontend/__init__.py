"""C-subset frontend: preprocessor, lexer, parser, and semantic analysis.

The frontend turns C source text into a typed abstract syntax tree:

>>> from repro.frontend import parse_translation_unit
>>> unit = parse_translation_unit("int main(void) { return 0; }")
>>> [d.name for d in unit.functions]
['main']
"""

from repro.frontend.ast import TranslationUnit
from repro.frontend.lexer import Lexer, tokenize
from repro.frontend.parser import Parser, parse_translation_unit
from repro.frontend.preprocessor import Preprocessor, preprocess
from repro.frontend.sema import analyze
from repro.frontend.tokens import Token, TokenKind

__all__ = [
    "Lexer",
    "Parser",
    "Preprocessor",
    "Token",
    "TokenKind",
    "TranslationUnit",
    "analyze",
    "parse_translation_unit",
    "preprocess",
    "tokenize",
]
