"""Hand-written lexer for the C subset.

The lexer consumes already-preprocessed text (no directives, though it
tolerates and skips ``#`` line markers) and produces a list of
:class:`~repro.frontend.tokens.Token`, terminated by an EOF token.
"""

from __future__ import annotations

from repro.errors import LexError, SourceLocation
from repro.frontend.tokens import (
    KEYWORDS,
    PUNCTUATORS_1,
    PUNCTUATORS_2,
    PUNCTUATORS_3,
    Token,
    TokenKind,
)

_SIMPLE_ESCAPES = {
    "n": 10,
    "t": 9,
    "r": 13,
    "0": 0,
    "\\": 92,
    "'": 39,
    '"': 34,
    "a": 7,
    "b": 8,
    "f": 12,
    "v": 11,
}


class Lexer:
    """Tokenizes one source buffer.

    >>> [t.spelling for t in Lexer("a + 1").tokens()[:-1]]
    ['a', '+', '1']
    """

    def __init__(self, text: str, filename: str = "<input>"):
        self._text = text
        self._filename = filename
        self._pos = 0
        self._line = 1
        self._col = 1

    def tokens(self) -> list[Token]:
        """Lex the entire buffer, returning tokens ending with EOF."""
        result = []
        while True:
            token = self._next_token()
            result.append(token)
            if token.kind is TokenKind.EOF:
                return result

    # ------------------------------------------------------------------
    # scanning helpers

    def _location(self) -> SourceLocation:
        return SourceLocation(self._filename, self._line, self._col)

    def _peek(self, offset: int = 0) -> str:
        index = self._pos + offset
        if index < len(self._text):
            return self._text[index]
        return ""

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self._pos >= len(self._text):
                return
            if self._text[self._pos] == "\n":
                self._line += 1
                self._col = 1
            else:
                self._col += 1
            self._pos += 1

    def _skip_trivia(self) -> None:
        """Skip whitespace, comments, and residual ``#`` line markers."""
        while self._pos < len(self._text):
            char = self._peek()
            if char in " \t\r\n\f\v":
                self._advance()
            elif char == "/" and self._peek(1) == "*":
                self._skip_block_comment()
            elif char == "/" and self._peek(1) == "/":
                while self._pos < len(self._text) and self._peek() != "\n":
                    self._advance()
            elif char == "#" and self._col == 1:
                while self._pos < len(self._text) and self._peek() != "\n":
                    self._advance()
            else:
                return

    def _skip_block_comment(self) -> None:
        start = self._location()
        self._advance(2)
        while self._pos < len(self._text):
            if self._peek() == "*" and self._peek(1) == "/":
                self._advance(2)
                return
            self._advance()
        raise LexError("unterminated block comment", start)

    # ------------------------------------------------------------------
    # token producers

    def _next_token(self) -> Token:
        self._skip_trivia()
        location = self._location()
        if self._pos >= len(self._text):
            return Token(TokenKind.EOF, "", location=location)
        char = self._peek()
        if char.isalpha() or char == "_":
            return self._lex_identifier(location)
        if char.isdigit():
            return self._lex_number(location)
        if char == "'":
            return self._lex_char(location)
        if char == '"':
            return self._lex_string(location)
        return self._lex_punct(location)

    def _lex_identifier(self, location: SourceLocation) -> Token:
        start = self._pos
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        spelling = self._text[start : self._pos]
        kind = TokenKind.KEYWORD if spelling in KEYWORDS else TokenKind.IDENT
        return Token(kind, spelling, spelling, location)

    def _lex_number(self, location: SourceLocation) -> Token:
        start = self._pos
        if self._peek() == "0" and self._peek(1) and self._peek(1) in "xX":
            self._advance(2)
            while self._peek() and self._peek() in "0123456789abcdefABCDEF":
                self._advance()
            spelling = self._text[start : self._pos]
            if len(spelling) == 2:
                raise LexError("malformed hexadecimal constant", location)
            value = int(spelling, 16)
        else:
            while self._peek().isdigit():
                self._advance()
            spelling = self._text[start : self._pos]
            # Octal constants: a leading zero in C; decode accordingly.
            try:
                value = (
                    int(spelling, 8)
                    if spelling.startswith("0") and len(spelling) > 1
                    else int(spelling)
                )
            except ValueError:  # e.g. "08": digits 8/9 are not octal
                raise LexError(
                    f"malformed octal constant {spelling!r}", location
                )
        while self._peek() and self._peek() in "uUlL":  # skip suffixes
            self._advance()
            spelling = self._text[start : self._pos]
        if self._peek().isalpha():
            raise LexError(f"malformed integer constant {spelling!r}", location)
        return Token(TokenKind.INT_CONST, spelling, value, location)

    def _lex_escape(self, location: SourceLocation) -> int:
        """Decode one escape sequence; the caller consumed the backslash."""
        char = self._peek()
        if char == "":
            raise LexError("unterminated escape sequence", location)
        if char == "x":
            self._advance()
            digits = ""
            while self._peek() and self._peek() in "0123456789abcdefABCDEF":
                digits += self._peek()
                self._advance()
            if not digits:
                raise LexError("malformed hex escape", location)
            return int(digits, 16) & 0xFF
        if char.isdigit():
            digits = ""
            while self._peek().isdigit() and len(digits) < 3:
                digits += self._peek()
                self._advance()
            return int(digits, 8) & 0xFF
        if char in _SIMPLE_ESCAPES:
            self._advance()
            return _SIMPLE_ESCAPES[char]
        raise LexError(f"unknown escape sequence '\\{char}'", location)

    def _lex_char(self, location: SourceLocation) -> Token:
        start = self._pos
        self._advance()  # opening quote
        char = self._peek()
        if char == "" or char == "\n":
            raise LexError("unterminated character constant", location)
        if char == "\\":
            self._advance()
            value = self._lex_escape(location)
        else:
            value = ord(char)
            self._advance()
        if self._peek() != "'":
            raise LexError("multi-character constant", location)
        self._advance()
        return Token(TokenKind.CHAR_CONST, self._text[start : self._pos], value, location)

    def _lex_string(self, location: SourceLocation) -> Token:
        start = self._pos
        self._advance()  # opening quote
        chars: list[str] = []
        while True:
            char = self._peek()
            if char == "" or char == "\n":
                raise LexError("unterminated string literal", location)
            if char == '"':
                self._advance()
                break
            if char == "\\":
                self._advance()
                chars.append(chr(self._lex_escape(location)))
            else:
                chars.append(char)
                self._advance()
        return Token(TokenKind.STRING, self._text[start : self._pos], "".join(chars), location)

    def _lex_punct(self, location: SourceLocation) -> Token:
        for length, table in ((3, PUNCTUATORS_3), (2, PUNCTUATORS_2), (1, PUNCTUATORS_1)):
            candidate = self._text[self._pos : self._pos + length]
            if candidate in table:
                self._advance(length)
                return Token(TokenKind.PUNCT, candidate, candidate, location)
        raise LexError(f"stray character {self._peek()!r}", location)


def tokenize(text: str, filename: str = "<input>") -> list[Token]:
    """Convenience wrapper: lex ``text`` into a token list ending in EOF."""
    return Lexer(text, filename).tokens()
