"""The C-subset type system.

Types are immutable value objects. Sizes follow a classic 32-bit ABI:
``char`` is 1 byte, ``int`` and pointers are 4 bytes, arrays and structs
are laid out contiguously with natural alignment.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SemanticError

WORD_SIZE = 4


class CType:
    """Base class for all C-subset types."""

    def size(self) -> int:
        raise NotImplementedError

    def alignment(self) -> int:
        return min(self.size(), WORD_SIZE) or 1

    @property
    def is_scalar(self) -> bool:
        """Scalars fit in one VM register: integers and pointers."""
        return False

    @property
    def is_integer(self) -> bool:
        return False

    @property
    def is_pointer(self) -> bool:
        return False

    @property
    def is_void(self) -> bool:
        return False

    @property
    def is_array(self) -> bool:
        return False

    @property
    def is_struct(self) -> bool:
        return False

    @property
    def is_function(self) -> bool:
        return False


@dataclass(frozen=True, slots=True)
class VoidType(CType):
    def size(self) -> int:
        return 0

    @property
    def is_void(self) -> bool:
        return True

    def __str__(self) -> str:
        return "void"


@dataclass(frozen=True, slots=True)
class IntType(CType):
    """``int`` (4 bytes) or ``char`` (1 byte)."""

    width: int = WORD_SIZE

    def size(self) -> int:
        return self.width

    @property
    def is_scalar(self) -> bool:
        return True

    @property
    def is_integer(self) -> bool:
        return True

    def __str__(self) -> str:
        return "char" if self.width == 1 else "int"


@dataclass(frozen=True, slots=True)
class PointerType(CType):
    pointee: CType

    def size(self) -> int:
        return WORD_SIZE

    @property
    def is_scalar(self) -> bool:
        return True

    @property
    def is_pointer(self) -> bool:
        return True

    def __str__(self) -> str:
        return f"{self.pointee}*"


@dataclass(frozen=True, slots=True)
class ArrayType(CType):
    element: CType
    length: int

    def size(self) -> int:
        return self.element.size() * self.length

    def alignment(self) -> int:
        return self.element.alignment()

    @property
    def is_array(self) -> bool:
        return True

    def __str__(self) -> str:
        return f"{self.element}[{self.length}]"


@dataclass(frozen=True, slots=True)
class StructField:
    name: str
    type: CType
    offset: int


@dataclass(eq=False, slots=True)
class StructType(CType):
    """A struct with laid-out fields.

    Field layout (offsets, total size) is computed by
    :func:`complete_struct` when the definition is parsed; an empty
    ``fields`` tuple denotes a forward-declared (incomplete) struct.
    Struct types compare by identity so that a self-referential struct
    (``struct node { struct node *next; }``) can be completed in place
    after its members mention it.
    """

    tag: str
    fields: tuple[StructField, ...] = ()
    total_size: int = 0
    align: int = 1

    def size(self) -> int:
        if not self.fields:
            raise SemanticError(f"use of incomplete struct {self.tag!r}")
        return self.total_size

    def alignment(self) -> int:
        return self.align

    @property
    def is_struct(self) -> bool:
        return True

    def field(self, name: str) -> StructField:
        for entry in self.fields:
            if entry.name == name:
                return entry
        raise SemanticError(f"struct {self.tag!r} has no field {name!r}")

    def has_field(self, name: str) -> bool:
        return any(entry.name == name for entry in self.fields)

    def __str__(self) -> str:
        return f"struct {self.tag}"


@dataclass(frozen=True, slots=True)
class FunctionType(CType):
    return_type: CType
    param_types: tuple[CType, ...] = ()

    def size(self) -> int:
        return WORD_SIZE  # as a value: decays to a function pointer

    @property
    def is_function(self) -> bool:
        return True

    def __str__(self) -> str:
        params = ", ".join(str(p) for p in self.param_types) or "void"
        return f"{self.return_type}({params})"


#: Singleton instances for the common types.
VOID = VoidType()
INT = IntType(WORD_SIZE)
CHAR = IntType(1)
CHAR_PTR = PointerType(CHAR)
INT_PTR = PointerType(INT)


def complete_struct(struct: StructType, members: list[tuple[str, CType]]) -> StructType:
    """Fill in natural-alignment layout for a struct definition, in place."""
    offset = 0
    align = 1
    fields = []
    seen: set[str] = set()
    for name, ctype in members:
        if name in seen:
            raise SemanticError(
                f"duplicate field {name!r} in struct {struct.tag!r}"
            )
        seen.add(name)
        member_align = ctype.alignment()
        align = max(align, member_align)
        offset = _round_up(offset, member_align)
        fields.append(StructField(name, ctype, offset))
        offset += ctype.size()
    struct.fields = tuple(fields)
    struct.total_size = _round_up(offset, align) if fields else 0
    struct.align = align
    return struct


def layout_struct(tag: str, members: list[tuple[str, CType]]) -> StructType:
    """Create and lay out a fresh struct type (convenience for tests)."""
    return complete_struct(StructType(tag), members)


def _round_up(value: int, align: int) -> int:
    return (value + align - 1) // align * align


def decay(ctype: CType) -> CType:
    """Array-to-pointer and function-to-pointer decay in rvalue contexts."""
    if isinstance(ctype, ArrayType):
        return PointerType(ctype.element)
    if isinstance(ctype, FunctionType):
        return PointerType(ctype)
    return ctype


def is_assignable(target: CType, source: CType) -> bool:
    """Loose C-style assignment compatibility check."""
    source = decay(source)
    if target.is_integer and source.is_integer:
        return True
    if target.is_pointer and source.is_pointer:
        return True  # C allows with a warning; the subset is permissive
    if target.is_pointer and source.is_integer:
        return True  # e.g. p = 0 (NULL)
    if target.is_integer and source.is_pointer:
        return True  # permissive, mirrors pre-ANSI C
    if target.is_struct and source.is_struct:
        return str(target) == str(source)
    return False


@dataclass(frozen=True, slots=True)
class FunctionSignature:
    """Resolved signature of a declared or defined function."""

    name: str
    type: FunctionType
    param_names: tuple[str, ...] = ()
    is_inline_hint: bool = field(default=False)
