"""Semantic analysis for the C subset.

Resolves identifiers to symbols, type-checks every expression (filling
in ``Expr.ctype``), verifies lvalue-ness and call signatures, and marks
address-taken variables and functions. The latter matters to the paper's
algorithm: functions whose addresses are used in computation form the
callee set of the ``###`` call-through-pointer node (§2.5).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SemanticError
from repro.frontend import ast
from repro.frontend.symbols import FunctionSymbol, Scope, VarSymbol
from repro.frontend.typesys import (
    CHAR,
    INT,
    ArrayType,
    CType,
    FunctionType,
    PointerType,
    StructType,
    decay,
    is_assignable,
)

_COMPARISON_OPS = ("<", ">", "<=", ">=", "==", "!=")
_LOGICAL_OPS = ("&&", "||")


@dataclass
class FunctionInfo:
    """Per-function facts collected during analysis, used by lowering."""

    definition: ast.FunctionDef
    params: list[VarSymbol] = field(default_factory=list)
    locals: list[VarSymbol] = field(default_factory=list)
    has_return_value: bool = False


@dataclass
class AnalyzedUnit:
    """A translation unit plus its resolved symbol information."""

    unit: ast.TranslationUnit
    globals: dict[str, VarSymbol] = field(default_factory=dict)
    functions: dict[str, FunctionSymbol] = field(default_factory=dict)
    function_info: dict[str, FunctionInfo] = field(default_factory=dict)

    @property
    def external_functions(self) -> list[str]:
        """Functions declared but not defined — the paper's externals."""
        return sorted(
            name for name, sym in self.functions.items() if sym.is_external
        )

    @property
    def address_taken_functions(self) -> list[str]:
        return sorted(
            name for name, sym in self.functions.items() if sym.address_taken
        )


class Analyzer:
    """Walks a TranslationUnit, checking and annotating it in place."""

    def __init__(self, unit: ast.TranslationUnit):
        self._unit = unit
        self._globals = Scope()
        self._scope = self._globals
        self._result = AnalyzedUnit(unit)
        self._current: FunctionInfo | None = None
        self._loop_depth = 0
        self._switch_depth = 0
        self._next_local_uid = 0

    # ------------------------------------------------------------------

    def analyze(self) -> AnalyzedUnit:
        for name, signature in self._unit.declared_only.items():
            symbol = FunctionSymbol(signature, defined=False)
            self._globals.declare(symbol)
            self._result.functions[name] = symbol
        for function in self._unit.functions:
            assert function.signature is not None
            existing = self._result.functions.get(function.name)
            if existing is not None:
                self._check_signature_match(existing, function)
                existing.defined = True
            else:
                symbol = FunctionSymbol(
                    function.signature, defined=True, location=function.location
                )
                self._globals.declare(symbol)
                self._result.functions[function.name] = symbol
        for global_var in self._unit.globals:
            self._declare_global(global_var)
        for function in self._unit.functions:
            self._analyze_function(function)
        return self._result

    @staticmethod
    def _check_signature_match(
        symbol: FunctionSymbol, function: ast.FunctionDef
    ) -> None:
        declared = symbol.signature.type
        defined = function.signature.type if function.signature else None
        if defined is None:
            return
        if symbol.defined:
            raise SemanticError(
                f"redefinition of function {function.name!r}", function.location
            )
        if len(declared.param_types) != len(defined.param_types):
            raise SemanticError(
                f"conflicting parameter counts for {function.name!r}",
                function.location,
            )
        symbol.signature = function.signature  # prefer the definition's names

    def _declare_global(self, decl: ast.GlobalVar) -> None:
        assert decl.var_type is not None
        if decl.var_type.is_void:
            raise SemanticError(f"variable {decl.name!r} has type void", decl.location)
        symbol = VarSymbol(
            decl.name,
            decl.var_type,
            "global",
            uid=len(self._result.globals),
            location=decl.location,
        )
        self._globals.declare(symbol)
        self._result.globals[decl.name] = symbol
        if decl.init is not None:
            self._check_initializer(decl.var_type, decl.init, constant=True)

    # ------------------------------------------------------------------
    # functions

    def _analyze_function(self, function: ast.FunctionDef) -> None:
        assert function.signature is not None and function.body is not None
        info = FunctionInfo(function)
        self._current = info
        self._next_local_uid = 0
        self._result.function_info[function.name] = info
        self._scope = Scope(self._globals)
        for param in function.params:
            assert param.param_type is not None
            if not param.name:
                raise SemanticError(
                    f"unnamed parameter in {function.name!r}", function.location
                )
            symbol = VarSymbol(
                param.name,
                param.param_type,
                "param",
                uid=self._next_local_uid,
                location=param.location,
            )
            self._next_local_uid += 1
            self._scope.declare(symbol)
            info.params.append(symbol)
        self._visit_block(function.body, new_scope=True)
        self._scope = self._globals
        self._current = None

    # ------------------------------------------------------------------
    # statements

    def _visit_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            self._visit_block(stmt, new_scope=True)
        elif isinstance(stmt, ast.DeclStmt):
            self._visit_decl(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            if stmt.expr is not None:
                self._visit_expr(stmt.expr)
        elif isinstance(stmt, ast.If):
            self._require_scalar(self._visit_expr(stmt.cond), stmt)
            self._visit_stmt(stmt.then)
            if stmt.otherwise is not None:
                self._visit_stmt(stmt.otherwise)
        elif isinstance(stmt, ast.While):
            self._require_scalar(self._visit_expr(stmt.cond), stmt)
            self._in_loop(stmt.body)
        elif isinstance(stmt, ast.DoWhile):
            self._in_loop(stmt.body)
            self._require_scalar(self._visit_expr(stmt.cond), stmt)
        elif isinstance(stmt, ast.For):
            previous = self._scope
            self._scope = Scope(previous)
            if stmt.init is not None:
                self._visit_stmt(stmt.init)
            if stmt.cond is not None:
                self._require_scalar(self._visit_expr(stmt.cond), stmt)
            if stmt.step is not None:
                self._visit_expr(stmt.step)
            self._in_loop(stmt.body)
            self._scope = previous
        elif isinstance(stmt, ast.Switch):
            ctype = self._visit_expr(stmt.scrutinee)
            if not decay(ctype).is_integer:
                raise SemanticError("switch needs an integer expression", stmt.location)
            self._switch_depth += 1
            for case in stmt.cases:
                for sub in case.body:
                    self._visit_stmt(sub)
            self._switch_depth -= 1
        elif isinstance(stmt, ast.Break):
            if self._loop_depth == 0 and self._switch_depth == 0:
                raise SemanticError("break outside loop or switch", stmt.location)
        elif isinstance(stmt, ast.Continue):
            if self._loop_depth == 0:
                raise SemanticError("continue outside loop", stmt.location)
        elif isinstance(stmt, ast.Return):
            self._visit_return(stmt)
        elif isinstance(stmt, ast.EmptyStmt):
            pass
        else:  # pragma: no cover - parser produces no other nodes
            raise SemanticError(f"unhandled statement {type(stmt).__name__}")

    def _in_loop(self, body: ast.Stmt | None) -> None:
        self._loop_depth += 1
        if body is not None:
            self._visit_stmt(body)
        self._loop_depth -= 1

    def _visit_block(self, block: ast.Block, new_scope: bool) -> None:
        previous = self._scope
        if new_scope:
            self._scope = Scope(previous)
        for stmt in block.statements:
            self._visit_stmt(stmt)
        self._scope = previous

    def _visit_decl(self, decl: ast.DeclStmt) -> None:
        assert decl.var_type is not None and self._current is not None
        if decl.var_type.is_void:
            raise SemanticError(f"variable {decl.name!r} has type void", decl.location)
        if isinstance(decl.var_type, StructType) and not decl.var_type.fields:
            raise SemanticError(
                f"variable {decl.name!r} has incomplete struct type", decl.location
            )
        symbol = VarSymbol(
            decl.name, decl.var_type, "local", uid=self._next_local_uid, location=decl.location
        )
        self._next_local_uid += 1
        self._scope.declare(symbol)
        self._current.locals.append(symbol)
        decl.symbol = symbol
        if decl.init is not None:
            self._check_initializer(decl.var_type, decl.init, constant=False)

    def _visit_return(self, stmt: ast.Return) -> None:
        assert self._current is not None
        signature = self._current.definition.signature
        assert signature is not None
        return_type = signature.type.return_type
        if stmt.value is None:
            if not return_type.is_void:
                # Classic C tolerates this; the subset requires a value.
                raise SemanticError(
                    f"non-void function {signature.name!r} returns no value",
                    stmt.location,
                )
            return
        if return_type.is_void:
            raise SemanticError(
                f"void function {signature.name!r} returns a value", stmt.location
            )
        value_type = self._visit_expr(stmt.value)
        if not is_assignable(return_type, value_type):
            raise SemanticError(
                f"cannot return {value_type} from function returning {return_type}",
                stmt.location,
            )
        self._current.has_return_value = True

    # ------------------------------------------------------------------
    # initializers

    def _check_initializer(
        self, target: CType, init: ast.Initializer, constant: bool
    ) -> None:
        if isinstance(init, ast.InitList):
            if isinstance(target, ArrayType):
                if len(init.items) > target.length:
                    raise SemanticError(
                        f"too many initializers ({len(init.items)}) for {target}",
                        init.location,
                    )
                for item in init.items:
                    self._check_initializer(target.element, item, constant)
            elif isinstance(target, StructType):
                if len(init.items) > len(target.fields):
                    raise SemanticError(
                        f"too many initializers for {target}", init.location
                    )
                for item, field_entry in zip(init.items, target.fields):
                    self._check_initializer(field_entry.type, item, constant)
            else:
                raise SemanticError(
                    f"brace initializer for scalar type {target}", init.location
                )
            return
        if isinstance(init, ast.StringLiteral) and isinstance(target, ArrayType):
            if not target.element.is_integer or target.element.size() != 1:
                raise SemanticError(
                    "string initializer needs a char array", init.location
                )
            if len(init.value) + 1 > target.length:
                raise SemanticError(
                    f"string too long for {target}", init.location
                )
            init.ctype = PointerType(CHAR)
            return
        value_type = self._visit_expr(init)
        if not is_assignable(target, value_type):
            raise SemanticError(
                f"cannot initialize {target} from {value_type}", init.location
            )

    # ------------------------------------------------------------------
    # expressions

    def _visit_expr(self, expr: ast.Expr | None) -> CType:
        assert expr is not None
        ctype = self._compute_type(expr)
        expr.ctype = ctype
        return ctype

    def _compute_type(self, expr: ast.Expr) -> CType:
        if isinstance(expr, ast.IntLiteral):
            return INT
        if isinstance(expr, ast.StringLiteral):
            return PointerType(CHAR)
        if isinstance(expr, ast.Identifier):
            return self._visit_identifier(expr)
        if isinstance(expr, ast.Unary):
            return self._visit_unary(expr)
        if isinstance(expr, ast.PostIncDec):
            operand = self._visit_expr(expr.operand)
            self._require_lvalue(expr.operand)
            self._require_scalar(decay(operand), expr)
            return decay(operand)
        if isinstance(expr, ast.Binary):
            return self._visit_binary(expr)
        if isinstance(expr, ast.Assign):
            return self._visit_assign(expr)
        if isinstance(expr, ast.Conditional):
            self._require_scalar(self._visit_expr(expr.cond), expr)
            then = decay(self._visit_expr(expr.then))
            otherwise = decay(self._visit_expr(expr.otherwise))
            if then.is_pointer:
                return then
            return otherwise if otherwise.is_pointer else then
        if isinstance(expr, ast.Call):
            return self._visit_call(expr)
        if isinstance(expr, ast.Index):
            return self._visit_index(expr)
        if isinstance(expr, ast.Member):
            return self._visit_member(expr)
        if isinstance(expr, ast.Cast):
            self._visit_expr(expr.operand)
            assert expr.target_type is not None
            return expr.target_type
        if isinstance(expr, ast.SizeofType):
            return INT
        raise SemanticError(f"unhandled expression {type(expr).__name__}", expr.location)

    def _visit_identifier(self, expr: ast.Identifier) -> CType:
        symbol = self._scope.lookup(expr.name)
        if symbol is None:
            raise SemanticError(f"use of undeclared identifier {expr.name!r}", expr.location)
        expr.symbol = symbol
        if isinstance(symbol, FunctionSymbol):
            # A function name reached through the generic path is being
            # used as a value (argument, assignment, table entry): its
            # address escapes — it joins the ### callee set (§2.5). The
            # direct-call case bypasses this method from _visit_call.
            symbol.address_taken = True
            return symbol.signature.type
        return symbol.ctype

    def _visit_unary(self, expr: ast.Unary) -> CType:
        assert expr.operand is not None
        if expr.op == "&":
            operand_type = self._visit_expr(expr.operand)
            if isinstance(expr.operand, ast.Identifier):
                symbol = expr.operand.symbol
                if isinstance(symbol, FunctionSymbol):
                    symbol.address_taken = True
                    assert isinstance(operand_type, FunctionType)
                    return PointerType(operand_type)
                assert isinstance(symbol, VarSymbol)
                symbol.address_taken = True
                return PointerType(operand_type)
            self._require_lvalue(expr.operand)
            self._mark_address_taken(expr.operand)
            return PointerType(operand_type)
        operand_type = self._visit_expr(expr.operand)
        if expr.op == "*":
            decayed = decay(operand_type)
            if not decayed.is_pointer:
                raise SemanticError(
                    f"cannot dereference non-pointer {operand_type}", expr.location
                )
            assert isinstance(decayed, PointerType)
            return decayed.pointee
        if expr.op == "sizeof":
            return INT
        if expr.op in ("++", "--"):
            self._require_lvalue(expr.operand)
            self._require_scalar(decay(operand_type), expr)
            return decay(operand_type)
        if expr.op in ("-", "+", "~"):
            if not decay(operand_type).is_integer:
                raise SemanticError(
                    f"unary {expr.op!r} needs an integer, got {operand_type}",
                    expr.location,
                )
            return INT
        if expr.op == "!":
            self._require_scalar(decay(operand_type), expr)
            return INT
        raise SemanticError(f"unknown unary operator {expr.op!r}", expr.location)

    def _mark_address_taken(self, expr: ast.Expr) -> None:
        """Propagate &-taken through lvalue structure to the base symbol."""
        if isinstance(expr, ast.Identifier) and isinstance(expr.symbol, VarSymbol):
            expr.symbol.address_taken = True
        elif isinstance(expr, ast.Index) and expr.base is not None:
            self._mark_address_taken(expr.base)
        elif isinstance(expr, ast.Member) and not expr.arrow and expr.base is not None:
            self._mark_address_taken(expr.base)
        # Deref / arrow cases already go through a pointer: nothing to mark.

    def _visit_binary(self, expr: ast.Binary) -> CType:
        assert expr.left is not None and expr.right is not None
        if expr.op == ",":
            self._visit_expr(expr.left)
            return decay(self._visit_expr(expr.right))
        left = decay(self._visit_expr(expr.left))
        right = decay(self._visit_expr(expr.right))
        if expr.op in _LOGICAL_OPS:
            self._require_scalar(left, expr)
            self._require_scalar(right, expr)
            return INT
        if expr.op in _COMPARISON_OPS:
            self._require_scalar(left, expr)
            self._require_scalar(right, expr)
            return INT
        if expr.op == "+":
            if left.is_pointer and right.is_integer:
                return left
            if left.is_integer and right.is_pointer:
                return right
        if expr.op == "-":
            if left.is_pointer and right.is_integer:
                return left
            if left.is_pointer and right.is_pointer:
                return INT
        if left.is_integer and right.is_integer:
            return INT
        raise SemanticError(
            f"invalid operands to {expr.op!r}: {left} and {right}", expr.location
        )

    def _visit_assign(self, expr: ast.Assign) -> CType:
        assert expr.target is not None and expr.value is not None
        target = self._visit_expr(expr.target)
        self._require_lvalue(expr.target)
        value = self._visit_expr(expr.value)
        if expr.op == "=":
            if not is_assignable(target, value):
                raise SemanticError(
                    f"cannot assign {value} to {target}", expr.location
                )
            return decay(target)
        # Compound assignment: target op= value.
        op = expr.op[:-1]
        left = decay(target)
        right = decay(value)
        if op in ("+", "-") and left.is_pointer and right.is_integer:
            return left
        if left.is_integer and right.is_integer:
            return left
        raise SemanticError(
            f"invalid operands to {expr.op!r}: {target} and {value}", expr.location
        )

    def _visit_call(self, expr: ast.Call) -> CType:
        assert expr.callee is not None
        # Resolve a direct callee without the generic identifier path so
        # that the call position does not mark the function
        # address-taken (only value uses feed the ### node).
        if isinstance(expr.callee, ast.Identifier):
            symbol = self._scope.lookup(expr.callee.name)
            if symbol is None:
                raise SemanticError(
                    f"call to undeclared function {expr.callee.name!r}",
                    expr.location,
                )
            expr.callee.symbol = symbol
            if isinstance(symbol, FunctionSymbol):
                callee_type: CType = symbol.signature.type
            else:
                callee_type = symbol.ctype
            expr.callee.ctype = callee_type
        else:
            callee_type = self._visit_expr(expr.callee)
        function_type: FunctionType | None = None
        if isinstance(callee_type, FunctionType):
            function_type = callee_type
        else:
            decayed = decay(callee_type)
            if decayed.is_pointer and isinstance(decayed, PointerType) and isinstance(
                decayed.pointee, FunctionType
            ):
                function_type = decayed.pointee
            else:
                raise SemanticError(
                    f"called object has type {callee_type}, not a function",
                    expr.location,
                )
        if len(expr.args) != len(function_type.param_types):
            name = (
                expr.callee.name
                if isinstance(expr.callee, ast.Identifier)
                else "<indirect>"
            )
            raise SemanticError(
                f"call to {name} with {len(expr.args)} argument(s), expected"
                f" {len(function_type.param_types)}",
                expr.location,
            )
        for arg, param_type in zip(expr.args, function_type.param_types):
            arg_type = self._visit_expr(arg)
            if not is_assignable(param_type, arg_type):
                raise SemanticError(
                    f"cannot pass {arg_type} as parameter of type {param_type}",
                    expr.location,
                )
        return function_type.return_type

    def _visit_index(self, expr: ast.Index) -> CType:
        assert expr.base is not None and expr.index is not None
        base = decay(self._visit_expr(expr.base))
        index = decay(self._visit_expr(expr.index))
        if not base.is_pointer:
            raise SemanticError(f"cannot index non-pointer {base}", expr.location)
        if not index.is_integer:
            raise SemanticError(f"array index must be integer, got {index}", expr.location)
        assert isinstance(base, PointerType)
        return base.pointee

    def _visit_member(self, expr: ast.Member) -> CType:
        assert expr.base is not None
        base = self._visit_expr(expr.base)
        if expr.arrow:
            decayed = decay(base)
            if not (decayed.is_pointer and isinstance(decayed, PointerType)):
                raise SemanticError(
                    f"'->' on non-pointer type {base}", expr.location
                )
            struct = decayed.pointee
        else:
            struct = base
        if not isinstance(struct, StructType):
            raise SemanticError(f"member access on non-struct {struct}", expr.location)
        return struct.field(expr.name).type

    # ------------------------------------------------------------------
    # checks

    def _require_scalar(self, ctype: CType, node: ast.Node) -> None:
        if not decay(ctype).is_scalar:
            raise SemanticError(
                f"expected a scalar value, got {ctype}", node.location
            )

    def _require_lvalue(self, expr: ast.Expr) -> None:
        if isinstance(expr, ast.Identifier):
            if isinstance(expr.symbol, FunctionSymbol):
                raise SemanticError(
                    f"function {expr.name!r} is not an lvalue", expr.location
                )
            if expr.ctype is not None and expr.ctype.is_array:
                raise SemanticError("array is not assignable", expr.location)
            return
        if isinstance(expr, (ast.Index, ast.Member)):
            return
        if isinstance(expr, ast.Unary) and expr.op == "*":
            return
        raise SemanticError("expression is not an lvalue", expr.location)


def analyze(unit: ast.TranslationUnit) -> AnalyzedUnit:
    """Run semantic analysis over ``unit``, annotating it in place."""
    return Analyzer(unit).analyze()
