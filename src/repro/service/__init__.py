"""Compilation-as-a-service: the asyncio front door to the pipeline.

Three cooperating modules turn the batch reproduction into a
long-running service that absorbs concurrent traffic:

- :mod:`repro.service.ops` — the four service operations (``compile``,
  ``profile``, ``inline``, ``check``) as plain picklable functions over
  JSON-shaped request params, shared verbatim by the server's worker
  pool, the CLI, and tests (so a service round-trip is comparable
  byte-for-byte with a direct call);
- :mod:`repro.service.server` — :class:`CompilationService`, an asyncio
  server on a local Unix socket: request batching, in-flight
  deduplication (identical concurrent requests coalesce onto one
  computation), a thread- or process-pool execution backend, per-request
  trace/metrics absorbed into the server's observability, and graceful
  shutdown that drains in-flight work;
- :mod:`repro.service.client` — a blocking :class:`ServiceClient`, an
  async :func:`arequest`, and :func:`run_concurrent` for firing many
  requests at once;
- :mod:`repro.service.top` — the live ``impact-inline top`` dashboard
  polling the enriched ``stats`` op.

Every request/response pair carries a
:class:`~repro.observability.context.TraceContext` (client-minted, or
server-edge-minted for bare requests), and the server exposes an
operational plane — ``health``, ``metrics`` (Prometheus text),
enriched ``stats``, and a threshold-gated slow-request/error log — on
the same socket; see README "Service mode" and "Observability".

The CLI front ends are ``impact-inline serve``, ``impact-inline call``,
and ``impact-inline top``.
"""

from repro.service.client import ServiceClient, ServiceError, arequest, run_concurrent
from repro.service.ops import OPS, execute, request_key
from repro.service.server import CompilationService, ServiceHandle, serve_in_thread
from repro.service.top import render_top, watch

__all__ = [
    "OPS",
    "CompilationService",
    "ServiceClient",
    "ServiceError",
    "ServiceHandle",
    "arequest",
    "execute",
    "render_top",
    "request_key",
    "run_concurrent",
    "serve_in_thread",
    "watch",
]
