"""``impact-inline top`` — a live view of a running service.

Polls the ``stats`` admin op of a :class:`~repro.service.server
.CompilationService` on an interval and renders throughput, latency
percentiles, queue depth, pool utilization, and cache rates as a
compact terminal dashboard, ``top``-style. Pure functions render; the
:func:`watch` loop owns the clock and the screen, so tests (and other
tooling) can call :func:`render_top` on captured snapshots directly.

Throughput and failure rates are *derived* between consecutive
snapshots: the service exports monotonically increasing totals, and
``top`` differentiates them over the polling interval.
"""

from __future__ import annotations

import sys
import time

from repro.service.client import ServiceClient, ServiceError

#: ANSI clear-screen + cursor-home, written before each frame.
_CLEAR = "\x1b[2J\x1b[H"


def _rate(current: float, previous: float, interval: float) -> float:
    if interval <= 0:
        return 0.0
    return max(0.0, (current - previous) / interval)


def _fmt_seconds(value: float) -> str:
    if value >= 100:
        return f"{value:.0f}s"
    if value >= 1:
        return f"{value:.2f}s"
    return f"{value * 1000:.1f}ms"


def _fmt_uptime(seconds: float) -> str:
    seconds = int(seconds)
    hours, rest = divmod(seconds, 3600)
    minutes, secs = divmod(rest, 60)
    if hours:
        return f"{hours}h{minutes:02d}m{secs:02d}s"
    if minutes:
        return f"{minutes}m{secs:02d}s"
    return f"{secs}s"


def render_top(
    stats: dict, previous: dict | None = None, interval: float = 2.0
) -> str:
    """Render one ``stats`` snapshot (enriched form) as a dashboard.

    ``previous`` is the prior snapshot; when given, request/failure
    throughput is differentiated over ``interval`` seconds.
    """
    service = stats.get("service") or {}
    requests = service.get("requests") or {}
    pool = service.get("pool") or {}
    cache = service.get("cache") or {}
    total = requests.get("total", 0)
    failed = requests.get("failed", 0)
    coalesced = requests.get("coalesced", 0)
    jobs = pool.get("jobs", 0) or 0
    busy = pool.get("busy", 0)

    rate_suffix = ""
    if previous is not None:
        prev_requests = (previous.get("service") or {}).get("requests") or {}
        throughput = _rate(total, prev_requests.get("total", 0), interval)
        fail_rate = _rate(failed, prev_requests.get("failed", 0), interval)
        rate_suffix = f"   {throughput:6.1f} req/s   {fail_rate:5.1f} err/s"

    lines = [
        "impact-inline top — "
        f"uptime {_fmt_uptime(service.get('uptime_seconds', 0.0))}"
        f"   pool {busy}/{jobs} busy ({pool.get('executor', '?')})",
        f"requests   total {total}   failed {failed}"
        f"   coalesced {coalesced}{rate_suffix}",
        f"queue      depth {service.get('queue_depth', 0)}"
        f"   inflight {service.get('inflight', 0)}",
        "cache      "
        f"hits {cache.get('hits', 0)}   misses {cache.get('misses', 0)}"
        f"   hit rate {100.0 * cache.get('hit_rate', 0.0):.1f}%",
    ]
    ops = service.get("ops") or {}
    if ops:
        lines.append("")
        lines.append(
            f"{'op':<10} {'count':>7} {'mean':>9} {'p50':>9}"
            f" {'p90':>9} {'p99':>9}"
        )
        for op in sorted(ops):
            stats_op = ops[op]
            lines.append(
                f"{op:<10} {stats_op.get('count', 0):>7.0f}"
                f" {_fmt_seconds(stats_op.get('mean', 0.0)):>9}"
                f" {_fmt_seconds(stats_op.get('p50', 0.0)):>9}"
                f" {_fmt_seconds(stats_op.get('p90', 0.0)):>9}"
                f" {_fmt_seconds(stats_op.get('p99', 0.0)):>9}"
            )
    else:
        lines.append("(no completed operations yet)")
    return "\n".join(lines)


def watch(
    socket_path: str,
    interval: float = 2.0,
    count: int = 0,
    out=None,
    clear: bool = True,
) -> int:
    """Poll ``stats`` and redraw until interrupted.

    ``count`` bounds the number of frames (0 = until Ctrl-C). Returns
    the process exit code: 0 on a clean stop, 1 if the first poll
    cannot reach the server.
    """
    out = out if out is not None else sys.stdout
    previous = None
    frames = 0
    try:
        with ServiceClient(socket_path) as client:
            while True:
                stats = client.stats()
                frame = render_top(stats, previous, interval)
                if clear:
                    out.write(_CLEAR)
                out.write(frame + "\n")
                out.flush()
                previous = stats
                frames += 1
                if count and frames >= count:
                    return 0
                time.sleep(interval)
    except KeyboardInterrupt:
        return 0
    except (OSError, ConnectionError, ServiceError) as exc:
        if frames:
            return 0  # the server went away mid-watch (e.g. drained)
        print(f"cannot reach service at {socket_path}: {exc}", file=sys.stderr)
        return 1
