"""The asyncio compilation service.

:class:`CompilationService` listens on a local Unix-domain socket and
speaks newline-delimited JSON: one request object per line in, one
response object per line out, on a persistent connection::

    {"id": 1, "op": "inline", "params": {"source": "...", ...}}
    {"id": 1, "ok": true, "result": {...}, "coalesced": false,
     "seconds": 0.012}

Request flow:

- **dedup** — each request is content-addressed by
  :func:`~repro.service.ops.request_key`. A request whose key matches
  one already in flight does not compute anything: it awaits the same
  future and is counted in ``service.requests.coalesced``.
- **batching** — new work lands on a queue; a dispatcher drains
  whatever has accumulated (up to ``max_batch``) and submits the batch
  to the worker pool in one wave (``service.batches`` /
  ``service.batch_size``).
- **execution** — the pool is the PR's pluggable executor tier:
  ``executor="thread"`` shares one in-memory
  :class:`~repro.pipeline.session.CompilationSession`;
  ``executor="process"`` gives true CPU parallelism, with workers
  sharing the session's sharded on-disk store.
- **telemetry** — every computed request runs under its own
  observability child, absorbed into the server's parent context
  (tagged ``worker="request-<n>"``), and its wall time lands in the
  ``service.request_seconds`` histogram. The ``stats`` admin op
  returns the live metrics snapshot.
- **graceful shutdown** — ``shutdown()`` (or the ``shutdown`` admin
  op, or SIGINT/SIGTERM under ``impact-inline serve``) stops accepting
  connections, lets every in-flight request finish and flush its
  response, then tears the pool down.

Admin operations (``ping``, ``stats``, ``shutdown``) are answered by
the server itself and never reach the pool.
"""

from __future__ import annotations

import asyncio
import functools
import json
import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

from repro.observability import Observability, resolve
from repro.pipeline.parallel import validate_executor, validate_jobs
from repro.service.ops import pool_execute, request_key

#: Default Unix socket path (cwd-relative, like ``.repro-cache``).
DEFAULT_SOCKET = ".repro-service.sock"


class CompilationService:
    """A local compile/profile/inline/check service over a Unix socket."""

    def __init__(
        self,
        socket_path: str = DEFAULT_SOCKET,
        jobs: int = 1,
        executor: str = "thread",
        cache_dir: str | None = None,
        obs: Observability | None = None,
        max_batch: int = 16,
    ):
        validate_jobs(jobs)
        validate_executor(executor)
        self.socket_path = socket_path
        self.jobs = jobs
        self.executor = executor
        self.max_batch = max(1, max_batch)
        self._session_spec = (
            {"cache_dir": cache_dir, "max_entries": 256, "disk_max_entries": None}
            if cache_dir
            else None
        )
        self._obs = resolve(obs)
        self._pool = None
        self._server: asyncio.AbstractServer | None = None
        self._queue: asyncio.Queue | None = None
        self._dispatcher: asyncio.Task | None = None
        self._inflight: dict[str, asyncio.Future] = {}
        self._batch_tasks: set[asyncio.Task] = set()
        self._writers: set[asyncio.StreamWriter] = set()
        self._request_seq = 0
        self._active_responses = 0
        self._idle: asyncio.Event | None = None
        self._stopped: asyncio.Event | None = None
        self._draining = False

    # ------------------------------------------------------------------
    # lifecycle

    async def start(self) -> None:
        """Bind the socket, start the pool and the dispatch loop."""
        if self._server is not None:
            raise RuntimeError("service already started")
        pool_cls = (
            ProcessPoolExecutor if self.executor == "process" else ThreadPoolExecutor
        )
        self._pool = pool_cls(max_workers=self.jobs)
        self._queue = asyncio.Queue()
        self._idle = asyncio.Event()
        self._idle.set()
        self._stopped = asyncio.Event()
        self._dispatcher = asyncio.create_task(self._dispatch_loop())
        if os.path.exists(self.socket_path):
            os.unlink(self.socket_path)  # a stale socket from a dead server
        self._server = await asyncio.start_unix_server(
            self._handle_client, path=self.socket_path
        )
        if self._obs.metrics.enabled:
            self._obs.metrics.gauge("service.jobs", self.jobs)

    async def wait_stopped(self) -> None:
        """Block until a graceful shutdown completes."""
        await self._stopped.wait()

    async def shutdown(self) -> None:
        """Stop accepting work, drain in-flight requests, tear down."""
        if self._draining:
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Every accepted request either coalesced onto an in-flight
        # future or was queued; draining means letting all of them
        # finish *and* flush their responses.
        while self._inflight or self._active_responses:
            if self._inflight:
                await asyncio.gather(
                    *list(self._inflight.values()), return_exceptions=True
                )
            if self._active_responses:
                self._idle.clear()
                await self._idle.wait()
        if self._dispatcher is not None:
            self._dispatcher.cancel()
        for task in list(self._batch_tasks):
            await asyncio.gather(task, return_exceptions=True)
        for writer in list(self._writers):
            writer.close()
        if self._pool is not None:
            self._pool.shutdown(wait=True)
        try:
            os.unlink(self.socket_path)
        except OSError:
            pass
        self._stopped.set()

    # ------------------------------------------------------------------
    # the wire protocol

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                self._active_responses += 1
                self._idle.clear()
                try:
                    response = await self._respond(line)
                    writer.write(
                        json.dumps(response, sort_keys=True, default=str).encode()
                        + b"\n"
                    )
                    await writer.drain()
                finally:
                    self._active_responses -= 1
                    if self._active_responses == 0:
                        self._idle.set()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._writers.discard(writer)
            writer.close()

    async def _respond(self, line: bytes) -> dict:
        try:
            request = json.loads(line)
        except json.JSONDecodeError as exc:
            return {"id": None, "ok": False, "error": f"bad request: {exc}"}
        request_id = request.get("id")
        op = request.get("op")
        params = request.get("params") or {}
        if op == "ping":
            return {"id": request_id, "ok": True, "result": "pong"}
        if op == "stats":
            return {
                "id": request_id,
                "ok": True,
                "result": self._obs.metrics.snapshot(),
            }
        if op == "shutdown":
            asyncio.get_running_loop().create_task(self.shutdown())
            return {"id": request_id, "ok": True, "result": "draining"}
        if self._draining:
            return {
                "id": request_id,
                "ok": False,
                "error": "server is shutting down",
            }
        envelope, coalesced = await self._submit(op, params)
        response = dict(envelope)
        response["id"] = request_id
        response["coalesced"] = coalesced
        return response

    # ------------------------------------------------------------------
    # dedup + batching + execution

    async def _submit(self, op: str, params: dict) -> tuple[dict, bool]:
        """Coalesce onto in-flight work or queue a new computation."""
        key = request_key(op, params)
        if self._obs.metrics.enabled:
            self._obs.metrics.inc("service.requests")
        existing = self._inflight.get(key)
        if existing is not None:
            if self._obs.metrics.enabled:
                self._obs.metrics.inc("service.requests.coalesced")
            self._obs.tracer.event(
                "service.coalesced", op=op, key=key[:12]
            )
            # shield: one client hanging up must not cancel a
            # computation other clients are waiting on.
            return await asyncio.shield(existing), True
        future = asyncio.get_running_loop().create_future()
        self._inflight[key] = future
        await self._queue.put((key, op, params, future))
        return await asyncio.shield(future), False

    async def _dispatch_loop(self) -> None:
        while True:
            batch = [await self._queue.get()]
            while len(batch) < self.max_batch:
                try:
                    batch.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            if self._obs.metrics.enabled:
                self._obs.metrics.inc("service.batches")
                self._obs.metrics.observe("service.batch_size", len(batch))
            # One task per entry, all submitted to the pool in one
            # wave; batches overlap, so a slow batch never blocks the
            # dispatcher.
            task = asyncio.create_task(self._run_batch(batch))
            self._batch_tasks.add(task)
            task.add_done_callback(self._batch_tasks.discard)

    async def _run_batch(self, batch) -> None:
        await asyncio.gather(
            *(self._run_one(*entry) for entry in batch),
            return_exceptions=True,
        )

    async def _run_one(
        self, key: str, op: str, params: dict, future: asyncio.Future
    ) -> None:
        self._request_seq += 1
        sequence = self._request_seq
        start = time.perf_counter()
        loop = asyncio.get_running_loop()
        try:
            result, child = await loop.run_in_executor(
                self._pool,
                functools.partial(
                    pool_execute,
                    op,
                    params,
                    self._session_spec,
                    self._obs.enabled,
                ),
            )
            seconds = time.perf_counter() - start
            if child is not None:
                self._obs.absorb(child, worker=f"request-{sequence}")
            if self._obs.metrics.enabled:
                self._obs.metrics.observe("service.request_seconds", seconds)
            envelope = {
                "ok": True,
                "result": result,
                "seconds": round(seconds, 6),
            }
        except Exception as exc:
            if self._obs.metrics.enabled:
                self._obs.metrics.inc("service.requests.failed")
            envelope = {
                "ok": False,
                "error": f"{type(exc).__name__}: {exc}",
            }
        finally:
            self._inflight.pop(key, None)
        if not future.cancelled():
            future.set_result(envelope)


# ----------------------------------------------------------------------
# embedding helper: run the service on a background thread


class ServiceHandle:
    """A running service on its own event-loop thread (tests, tooling)."""

    def __init__(self, service: CompilationService, loop, thread):
        self.service = service
        self._loop = loop
        self._thread = thread

    def stop(self, timeout: float = 30.0) -> None:
        """Gracefully drain and stop the service, then join the thread."""
        future = asyncio.run_coroutine_threadsafe(
            self.service.shutdown(), self._loop
        )
        future.result(timeout=timeout)
        self._thread.join(timeout=timeout)


def serve_in_thread(
    socket_path: str,
    jobs: int = 1,
    executor: str = "thread",
    cache_dir: str | None = None,
    obs: Observability | None = None,
    max_batch: int = 16,
    timeout: float = 30.0,
) -> ServiceHandle:
    """Start a :class:`CompilationService` on a daemon thread.

    Returns once the socket is accepting connections. The caller owns
    ``obs`` and may read it after :meth:`ServiceHandle.stop`.
    """
    started = threading.Event()
    holder: dict = {}

    def runner():
        async def main():
            service = CompilationService(
                socket_path,
                jobs=jobs,
                executor=executor,
                cache_dir=cache_dir,
                obs=obs,
                max_batch=max_batch,
            )
            await service.start()
            holder["service"] = service
            holder["loop"] = asyncio.get_running_loop()
            started.set()
            await service.wait_stopped()

        asyncio.run(main())

    thread = threading.Thread(target=runner, daemon=True, name="repro-service")
    thread.start()
    if not started.wait(timeout):
        raise RuntimeError("service failed to start")
    return ServiceHandle(holder["service"], holder["loop"], thread)
