"""The asyncio compilation service.

:class:`CompilationService` listens on a local Unix-domain socket and
speaks newline-delimited JSON: one request object per line in, one
response object per line out, on a persistent connection::

    {"id": 1, "op": "inline", "params": {"source": "...", ...},
     "trace": {"trace_id": "9f2c...", "request_id": "03ab..."}}
    {"id": 1, "ok": true, "result": {...}, "coalesced": false,
     "seconds": 0.012, "trace_id": "9f2c...", "request_id": "03ab..."}

Request flow:

- **trace context** — every request carries a
  :class:`~repro.observability.context.TraceContext`, minted at the
  client or (when absent) at the server edge. The context rides the
  dispatch queue into the worker pool, is bound onto the worker's
  tracer (so worker spans carry it at emit time), and is echoed on the
  response, so ``grep <trace_id>`` over the trace JSONL reconstructs
  the request end-to-end across processes. Coalesced requests keep
  their own ids; the primary computation's completion event records
  every attached trace_id.
- **dedup** — each request is content-addressed by
  :func:`~repro.service.ops.request_key`. A request whose key matches
  one already in flight does not compute anything: it awaits the same
  future and is counted in ``service.requests.coalesced``.
- **batching** — new work lands on a queue; a dispatcher drains
  whatever has accumulated (up to ``max_batch``) and submits the batch
  to the worker pool in one wave (``service.batches`` /
  ``service.batch_size``).
- **execution** — the pool is the pluggable executor tier:
  ``executor="thread"`` shares one in-memory
  :class:`~repro.pipeline.session.CompilationSession`;
  ``executor="process"`` gives true CPU parallelism, with workers
  sharing the session's sharded on-disk store.
- **telemetry** — every computed request runs under its own
  observability child, absorbed into the server's parent context
  (tagged ``worker="request-<n>"`` plus the request's trace ids), and
  its wall time lands in ``service.request_seconds`` and the per-op
  ``service.op_seconds{op=...}`` histograms. Operational gauges
  (``service.queue_depth``, ``service.inflight``,
  ``service.pool_busy``/``service.pool_utilization``) are refreshed on
  every state change and on every scrape; failures count into
  ``service.errors{class=...,op=...}``. Requests slower than
  ``slow_threshold`` (and every failed request) append a structured
  record to the ``slow_log`` JSONL (trace ids, op, duration, cache
  outcome).
- **exposition** — the ``metrics`` admin op renders the registry as
  Prometheus text (``repro_*`` families); ``prom_out`` additionally
  rewrites that text to a file every ``prom_interval`` seconds for
  file-based scraping. ``health`` reports liveness/readiness (pool up,
  socket accepting, cache dir writable); ``stats`` returns the raw
  snapshot enriched with uptime, request totals, per-op latency
  percentiles, and cache rates.
- **graceful shutdown** — ``shutdown()`` (or the ``shutdown`` admin
  op, or SIGINT/SIGTERM under ``impact-inline serve``) stops accepting
  connections, lets every in-flight request finish and flush its
  response, then tears the pool down.

Admin operations (``ping``, ``stats``, ``health``, ``metrics``,
``shutdown``) are answered by the server itself and never reach the
pool.
"""

from __future__ import annotations

import asyncio
import functools
import json
import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

from repro.observability import Observability, labeled, resolve, split_labels
from repro.observability.context import TraceContext
from repro.observability.export import (
    PROMETHEUS_CONTENT_TYPE,
    append_jsonl,
    render_prometheus,
    slow_request_record,
)
from repro.pipeline.parallel import validate_executor, validate_jobs
from repro.service.ops import pool_execute, request_key

#: Default Unix socket path (cwd-relative, like ``.repro-cache``).
DEFAULT_SOCKET = ".repro-service.sock"

#: Default slow-request threshold (seconds).
DEFAULT_SLOW_THRESHOLD = 1.0


class CompilationService:
    """A local compile/profile/inline/check service over a Unix socket."""

    def __init__(
        self,
        socket_path: str = DEFAULT_SOCKET,
        jobs: int = 1,
        executor: str = "thread",
        cache_dir: str | None = None,
        obs: Observability | None = None,
        max_batch: int = 16,
        slow_log: str | None = None,
        slow_threshold: float = DEFAULT_SLOW_THRESHOLD,
        prom_out: str | None = None,
        prom_interval: float = 5.0,
        engine: str = "counting",
    ):
        from repro.vm.machine import ENGINES

        validate_jobs(jobs)
        validate_executor(executor)
        if engine not in ENGINES:
            raise ValueError(
                f"engine must be one of {', '.join(ENGINES)}; got {engine!r}"
            )
        self.socket_path = socket_path
        self.jobs = jobs
        self.executor = executor
        #: Default execution engine for requests that do not name one.
        self.engine = engine
        self.max_batch = max(1, max_batch)
        self.slow_log = slow_log
        self.slow_threshold = slow_threshold
        self.prom_out = prom_out
        self.prom_interval = max(0.05, prom_interval)
        self._cache_dir = cache_dir
        self._session_spec = (
            {"cache_dir": cache_dir, "max_entries": 256, "disk_max_entries": None}
            if cache_dir
            else None
        )
        self._obs = resolve(obs)
        self._pool = None
        self._server: asyncio.AbstractServer | None = None
        self._queue: asyncio.Queue | None = None
        self._dispatcher: asyncio.Task | None = None
        self._exporter: asyncio.Task | None = None
        self._inflight: dict[str, asyncio.Future] = {}
        #: key -> every trace_id attached to that in-flight computation
        #: (the primary request's id first, coalesced joiners after).
        self._inflight_traces: dict[str, list[str]] = {}
        self._batch_tasks: set[asyncio.Task] = set()
        self._writers: set[asyncio.StreamWriter] = set()
        self._request_seq = 0
        self._active_responses = 0
        self._pool_busy = 0
        self._started_unix: float | None = None
        self._idle: asyncio.Event | None = None
        self._stopped: asyncio.Event | None = None
        self._draining = False

    # ------------------------------------------------------------------
    # lifecycle

    async def start(self) -> None:
        """Bind the socket, start the pool and the dispatch loop."""
        if self._server is not None:
            raise RuntimeError("service already started")
        pool_cls = (
            ProcessPoolExecutor if self.executor == "process" else ThreadPoolExecutor
        )
        self._pool = pool_cls(max_workers=self.jobs)
        self._queue = asyncio.Queue()
        self._idle = asyncio.Event()
        self._idle.set()
        self._stopped = asyncio.Event()
        self._started_unix = time.time()
        self._dispatcher = asyncio.create_task(self._dispatch_loop())
        if os.path.exists(self.socket_path):
            os.unlink(self.socket_path)  # a stale socket from a dead server
        self._server = await asyncio.start_unix_server(
            self._handle_client, path=self.socket_path
        )
        if self._obs.metrics.enabled:
            self._obs.metrics.gauge("service.jobs", self.jobs)
            self._update_gauges()
        if self.prom_out:
            self._write_prometheus()
            self._exporter = asyncio.create_task(self._export_loop())

    async def wait_stopped(self) -> None:
        """Block until a graceful shutdown completes."""
        await self._stopped.wait()

    async def shutdown(self) -> None:
        """Stop accepting work, drain in-flight requests, tear down."""
        if self._draining:
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Every accepted request either coalesced onto an in-flight
        # future or was queued; draining means letting all of them
        # finish *and* flush their responses.
        while self._inflight or self._active_responses:
            if self._inflight:
                await asyncio.gather(
                    *list(self._inflight.values()), return_exceptions=True
                )
            if self._active_responses:
                self._idle.clear()
                await self._idle.wait()
        if self._dispatcher is not None:
            self._dispatcher.cancel()
        if self._exporter is not None:
            self._exporter.cancel()
        for task in list(self._batch_tasks):
            await asyncio.gather(task, return_exceptions=True)
        for writer in list(self._writers):
            writer.close()
        if self._pool is not None:
            self._pool.shutdown(wait=True)
        if self.prom_out:
            self._write_prometheus()  # final state for file scrapers
        try:
            os.unlink(self.socket_path)
        except OSError:
            pass
        self._stopped.set()

    # ------------------------------------------------------------------
    # operational gauges + exposition

    def _update_gauges(self) -> None:
        """Refresh the live operational gauges (cheap; called on every
        state change and on every scrape so they are never stale)."""
        metrics = self._obs.metrics
        if not metrics.enabled:
            return
        metrics.gauge(
            "service.queue_depth", self._queue.qsize() if self._queue else 0
        )
        metrics.gauge("service.inflight", len(self._inflight))
        metrics.gauge("service.pool_busy", self._pool_busy)
        metrics.gauge(
            "service.pool_utilization",
            self._pool_busy / self.jobs if self.jobs else 0.0,
        )
        if self._started_unix is not None:
            metrics.gauge(
                "service.uptime_seconds",
                round(time.time() - self._started_unix, 3),
            )

    def _write_prometheus(self) -> None:
        """Atomically rewrite the Prometheus text file (``prom_out``)."""
        self._update_gauges()
        tmp = f"{self.prom_out}.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(render_prometheus(self._obs.metrics))
        os.replace(tmp, self.prom_out)

    async def _export_loop(self) -> None:
        while True:
            await asyncio.sleep(self.prom_interval)
            self._write_prometheus()

    def _uptime(self) -> float:
        if self._started_unix is None:
            return 0.0
        return round(time.time() - self._started_unix, 3)

    def _health_result(self) -> dict:
        """Liveness + readiness: pool up, socket accepting, cache dir
        writable. Answering at all is liveness; ``ready`` means the
        server can actually take compute traffic right now."""
        pool_ok = self._pool is not None and not self._draining
        socket_ok = self._server is not None and self._server.is_serving()
        cache_ok = True
        if self._cache_dir:
            try:
                os.makedirs(self._cache_dir, exist_ok=True)
                cache_ok = os.access(self._cache_dir, os.W_OK)
            except OSError:
                cache_ok = False
        checks = {"pool": pool_ok, "socket": socket_ok, "cache_dir": cache_ok}
        ready = all(checks.values())
        return {
            "status": "ok" if ready else "degraded",
            "live": True,
            "ready": ready,
            "checks": checks,
            "uptime_seconds": self._uptime(),
            "jobs": self.jobs,
            "executor": self.executor,
            "engine": self.engine,
            "draining": self._draining,
        }

    def _stats_result(self) -> dict:
        """The metrics snapshot enriched with a ``service`` section:
        uptime, request totals, queue/pool state, per-op latency
        percentiles, and cache rates."""
        self._update_gauges()
        snapshot = self._obs.metrics.snapshot()
        counters = snapshot["counters"]
        ops: dict[str, dict] = {}
        for name, stats in snapshot["histograms"].items():
            base, labels = split_labels(name)
            if base == "service.op_seconds" and "op" in labels:
                ops[labels["op"]] = {
                    key: stats[key]
                    for key in ("count", "mean", "min", "max", "p50", "p90", "p99")
                    if key in stats
                }
        hits = counters.get("pipeline.cache.hits", 0)
        misses = counters.get("pipeline.cache.misses", 0)
        snapshot["service"] = {
            "uptime_seconds": self._uptime(),
            "started_unix": self._started_unix,
            "requests": {
                "total": counters.get("service.requests", 0),
                "failed": counters.get("service.requests.failed", 0),
                "coalesced": counters.get("service.requests.coalesced", 0),
            },
            "queue_depth": self._queue.qsize() if self._queue else 0,
            "inflight": len(self._inflight),
            "pool": {
                "jobs": self.jobs,
                "executor": self.executor,
                "busy": self._pool_busy,
            },
            "ops": ops,
            "cache": {
                "hits": hits,
                "misses": misses,
                "hit_rate": hits / (hits + misses) if hits + misses else 0.0,
            },
        }
        return snapshot

    # ------------------------------------------------------------------
    # the wire protocol

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                self._active_responses += 1
                self._idle.clear()
                try:
                    response = await self._respond(line)
                    writer.write(
                        json.dumps(response, sort_keys=True, default=str).encode()
                        + b"\n"
                    )
                    await writer.drain()
                finally:
                    self._active_responses -= 1
                    if self._active_responses == 0:
                        self._idle.set()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._writers.discard(writer)
            writer.close()

    async def _respond(self, line: bytes) -> dict:
        try:
            request = json.loads(line)
        except json.JSONDecodeError as exc:
            return {"id": None, "ok": False, "error": f"bad request: {exc}"}
        request_id = request.get("id")
        op = request.get("op")
        params = request.get("params") or {}
        # Ingress default: a server started with --engine fast runs
        # engine-agnostic requests on the fast tier. Explicit per-request
        # engines always win, and the injection happens before
        # request_key so coalescing sees the resolved engine.
        if self.engine != "counting" and "engine" not in params:
            params = {**params, "engine": self.engine}
        # The server edge: adopt the client's trace context, or mint one
        # so even untraced clients get correlated telemetry + echo.
        trace = TraceContext.from_wire(request.get("trace")) or TraceContext.mint()

        def reply(body: dict) -> dict:
            body["id"] = request_id
            body["trace_id"] = trace.trace_id
            body["request_id"] = trace.request_id
            return body

        if op == "ping":
            return reply({"ok": True, "result": "pong"})
        if op == "health":
            return reply({"ok": True, "result": self._health_result()})
        if op == "stats":
            return reply({"ok": True, "result": self._stats_result()})
        if op == "metrics":
            self._update_gauges()
            return reply(
                {
                    "ok": True,
                    "result": {
                        "content_type": PROMETHEUS_CONTENT_TYPE,
                        "body": render_prometheus(self._obs.metrics),
                    },
                }
            )
        if op == "shutdown":
            asyncio.get_running_loop().create_task(self.shutdown())
            return reply({"ok": True, "result": "draining"})
        if self._draining:
            return reply({"ok": False, "error": "server is shutting down"})
        envelope, coalesced = await self._submit(op, params, trace)
        response = dict(envelope)
        response["coalesced"] = coalesced
        return reply(response)

    # ------------------------------------------------------------------
    # dedup + batching + execution

    async def _submit(
        self, op: str, params: dict, trace: TraceContext
    ) -> tuple[dict, bool]:
        """Coalesce onto in-flight work or queue a new computation."""
        key = request_key(op, params)
        if self._obs.metrics.enabled:
            self._obs.metrics.inc("service.requests")
        existing = self._inflight.get(key)
        if existing is not None:
            self._inflight_traces.setdefault(key, []).append(trace.trace_id)
            if self._obs.metrics.enabled:
                self._obs.metrics.inc("service.requests.coalesced")
            self._obs.tracer.event(
                "service.coalesced",
                op=op,
                key=key[:12],
                trace_id=trace.trace_id,
                request_id=trace.request_id,
            )
            # shield: one client hanging up must not cancel a
            # computation other clients are waiting on.
            return await asyncio.shield(existing), True
        future = asyncio.get_running_loop().create_future()
        self._inflight[key] = future
        self._inflight_traces[key] = [trace.trace_id]
        await self._queue.put((key, op, params, future, trace))
        self._update_gauges()
        return await asyncio.shield(future), False

    async def _dispatch_loop(self) -> None:
        while True:
            batch = [await self._queue.get()]
            while len(batch) < self.max_batch:
                try:
                    batch.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            if self._obs.metrics.enabled:
                self._obs.metrics.inc("service.batches")
                self._obs.metrics.observe("service.batch_size", len(batch))
                self._update_gauges()
            # One task per entry, all submitted to the pool in one
            # wave; batches overlap, so a slow batch never blocks the
            # dispatcher.
            task = asyncio.create_task(self._run_batch(batch))
            self._batch_tasks.add(task)
            task.add_done_callback(self._batch_tasks.discard)

    async def _run_batch(self, batch) -> None:
        await asyncio.gather(
            *(self._run_one(*entry) for entry in batch),
            return_exceptions=True,
        )

    def _log_slow(self, record: dict) -> None:
        if self.slow_log:
            try:
                append_jsonl(self.slow_log, record)
            except OSError:
                pass  # the log must never take a request down

    async def _run_one(
        self,
        key: str,
        op: str,
        params: dict,
        future: asyncio.Future,
        trace: TraceContext,
    ) -> None:
        self._request_seq += 1
        sequence = self._request_seq
        start = time.perf_counter()
        loop = asyncio.get_running_loop()
        tracer = self._obs.tracer
        tracer.event(
            "service.dispatch",
            op=op,
            seq=sequence,
            trace_id=trace.trace_id,
            request_id=trace.request_id,
        )
        self._pool_busy += 1
        self._update_gauges()
        try:
            result, child = await loop.run_in_executor(
                self._pool,
                functools.partial(
                    pool_execute,
                    op,
                    params,
                    self._session_spec,
                    self._obs.enabled,
                    trace.to_wire(),
                ),
            )
            seconds = time.perf_counter() - start
            cache_hits = cache_misses = 0
            if child is not None:
                cache_hits = child.metrics.counters.get("pipeline.cache.hits", 0)
                cache_misses = child.metrics.counters.get(
                    "pipeline.cache.misses", 0
                )
                self._obs.absorb(
                    child,
                    worker=f"request-{sequence}",
                    trace_id=trace.trace_id,
                    request_id=trace.request_id,
                )
            if self._obs.metrics.enabled:
                self._obs.metrics.observe("service.request_seconds", seconds)
                self._obs.metrics.observe(
                    labeled("service.op_seconds", op=op), seconds
                )
            attached = list(self._inflight_traces.get(key, ()))
            tracer.event(
                "service.request_done",
                op=op,
                seq=sequence,
                seconds=round(seconds, 6),
                trace_id=trace.trace_id,
                request_id=trace.request_id,
                attached_trace_ids=attached,
                coalesced_requests=max(0, len(attached) - 1),
            )
            if self.slow_log and seconds >= self.slow_threshold:
                self._log_slow(
                    slow_request_record(
                        kind="slow",
                        op=op,
                        seconds=seconds,
                        trace_id=trace.trace_id,
                        request_id=trace.request_id,
                        threshold=self.slow_threshold,
                        cache_hits=cache_hits,
                        cache_misses=cache_misses,
                    )
                )
            envelope = {
                "ok": True,
                "result": result,
                "seconds": round(seconds, 6),
            }
        except Exception as exc:
            seconds = time.perf_counter() - start
            if self._obs.metrics.enabled:
                self._obs.metrics.inc("service.requests.failed")
                self._obs.metrics.inc(
                    labeled(
                        "service.errors",
                        op=op,
                        **{"class": type(exc).__name__},
                    )
                )
            tracer.event(
                "service.request_error",
                op=op,
                seq=sequence,
                seconds=round(seconds, 6),
                trace_id=trace.trace_id,
                request_id=trace.request_id,
                error=f"{type(exc).__name__}: {exc}",
            )
            self._log_slow(
                slow_request_record(
                    kind="error",
                    op=op,
                    seconds=seconds,
                    trace_id=trace.trace_id,
                    request_id=trace.request_id,
                    error=f"{type(exc).__name__}: {exc}",
                )
            )
            envelope = {
                "ok": False,
                "error": f"{type(exc).__name__}: {exc}",
            }
        finally:
            self._pool_busy -= 1
            self._inflight.pop(key, None)
            self._inflight_traces.pop(key, None)
            self._update_gauges()
        if not future.cancelled():
            future.set_result(envelope)


# ----------------------------------------------------------------------
# embedding helper: run the service on a background thread


class ServiceHandle:
    """A running service on its own event-loop thread (tests, tooling)."""

    def __init__(self, service: CompilationService, loop, thread):
        self.service = service
        self._loop = loop
        self._thread = thread

    def stop(self, timeout: float = 30.0) -> None:
        """Gracefully drain and stop the service, then join the thread."""
        future = asyncio.run_coroutine_threadsafe(
            self.service.shutdown(), self._loop
        )
        future.result(timeout=timeout)
        self._thread.join(timeout=timeout)


def serve_in_thread(
    socket_path: str,
    jobs: int = 1,
    executor: str = "thread",
    cache_dir: str | None = None,
    obs: Observability | None = None,
    max_batch: int = 16,
    timeout: float = 30.0,
    **service_kwargs,
) -> ServiceHandle:
    """Start a :class:`CompilationService` on a daemon thread.

    Returns once the socket is accepting connections. The caller owns
    ``obs`` and may read it after :meth:`ServiceHandle.stop`. Extra
    keyword arguments (``slow_log``, ``slow_threshold``, ``prom_out``,
    ``prom_interval``) pass through to the service.
    """
    started = threading.Event()
    holder: dict = {}

    def runner():
        async def main():
            service = CompilationService(
                socket_path,
                jobs=jobs,
                executor=executor,
                cache_dir=cache_dir,
                obs=obs,
                max_batch=max_batch,
                **service_kwargs,
            )
            await service.start()
            holder["service"] = service
            holder["loop"] = asyncio.get_running_loop()
            started.set()
            await service.wait_stopped()

        asyncio.run(main())

    thread = threading.Thread(target=runner, daemon=True, name="repro-service")
    thread.start()
    if not started.wait(timeout):
        raise RuntimeError("service failed to start")
    return ServiceHandle(holder["service"], holder["loop"], thread)
