"""Clients for the compilation service.

:class:`ServiceClient` is the blocking client: one persistent
connection, newline-delimited JSON requests, convenience wrappers per
operation. :func:`arequest` is the asyncio variant (one request per
connection), and :func:`run_concurrent` fires a whole list of requests
at once — the natural way to exercise (and test) the server's
in-flight deduplication.

Every request carries a
:class:`~repro.observability.context.TraceContext` — minted here at
the client unless the caller passes one — and every response echoes
``trace_id``/``request_id``, so a client log line and the server's
trace JSONL correlate on the same ids.
"""

from __future__ import annotations

import asyncio
import json
import socket

from repro.observability.context import TraceContext


class ServiceError(RuntimeError):
    """The server answered, but with an error."""


class ServiceClient:
    """Blocking newline-delimited-JSON client over a Unix socket."""

    def __init__(self, socket_path: str, timeout: float = 300.0):
        self.socket_path = socket_path
        self.timeout = timeout
        self._sock: socket.socket | None = None
        self._buffer = b""
        self._next_id = 0

    # ------------------------------------------------------------------

    def _connection(self) -> socket.socket:
        if self._sock is None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout)
            sock.connect(self.socket_path)
            self._sock = sock
        return self._sock

    def _read_line(self) -> bytes:
        sock = self._connection()
        while b"\n" not in self._buffer:
            chunk = sock.recv(65536)
            if not chunk:
                raise ServiceError("server closed the connection")
            self._buffer += chunk
        line, self._buffer = self._buffer.split(b"\n", 1)
        return line

    def request(
        self,
        op: str,
        params: dict | None = None,
        raw: bool = False,
        trace: TraceContext | None = None,
    ) -> dict:
        """Send one request and wait for its response.

        Returns the operation result, or the full response envelope
        (``id``/``ok``/``result``/``coalesced``/``seconds``/
        ``trace_id``/``request_id``) with ``raw=True``. A fresh
        :class:`TraceContext` is minted per request unless ``trace`` is
        given. Raises :class:`ServiceError` on an error reply.
        """
        self._next_id += 1
        trace = trace or TraceContext.mint()
        payload = {
            "id": self._next_id,
            "op": op,
            "params": params or {},
            "trace": trace.to_wire(),
        }
        self._connection().sendall(
            json.dumps(payload, default=str).encode() + b"\n"
        )
        response = json.loads(self._read_line())
        if raw:
            return response
        if not response.get("ok"):
            raise ServiceError(response.get("error", "unknown server error"))
        return response.get("result")

    # convenience wrappers ---------------------------------------------

    def compile(self, source: str, **params) -> dict:
        return self.request("compile", {"source": source, **params})

    def profile(self, source: str, **params) -> dict:
        return self.request("profile", {"source": source, **params})

    def inline(self, source: str, **params) -> dict:
        return self.request("inline", {"source": source, **params})

    def check(self, source: str, **params) -> dict:
        return self.request("check", {"source": source, **params})

    def ping(self) -> str:
        return self.request("ping")

    def stats(self) -> dict:
        return self.request("stats")

    def health(self) -> dict:
        """Liveness/readiness checks plus uptime (the ``health`` op)."""
        return self.request("health")

    def metrics(self) -> dict:
        """Prometheus text exposition (``{"content_type", "body"}``)."""
        return self.request("metrics")

    def shutdown(self) -> str:
        return self.request("shutdown")

    # ------------------------------------------------------------------

    def close(self) -> None:
        if self._sock is not None:
            self._sock.close()
            self._sock = None
            self._buffer = b""

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


async def arequest(
    socket_path: str,
    op: str,
    params: dict | None = None,
    trace: TraceContext | None = None,
) -> dict:
    """One async request on its own connection; returns the envelope.

    Mints a :class:`TraceContext` unless one is given; the returned
    envelope's ``trace_id``/``request_id`` echo the ids that were sent.
    """
    reader, writer = await asyncio.open_unix_connection(socket_path)
    try:
        trace = trace or TraceContext.mint()
        payload = {
            "id": 1,
            "op": op,
            "params": params or {},
            "trace": trace.to_wire(),
        }
        writer.write(json.dumps(payload, default=str).encode() + b"\n")
        await writer.drain()
        line = await reader.readline()
        if not line:
            raise ServiceError("server closed the connection")
        return json.loads(line)
    finally:
        writer.close()


def run_concurrent(
    socket_path: str, requests: list[tuple]
) -> list[dict]:
    """Fire every request at once; envelopes come back in order.

    Each request is ``(op, params)`` or ``(op, params, trace)`` with an
    explicit :class:`TraceContext`. Identical requests submitted this
    way race into the server together, so all but the first coalesce
    onto one computation — check the ``coalesced`` flag on the
    returned envelopes (each still echoes its own ``trace_id``).
    """

    async def _go():
        return list(
            await asyncio.gather(
                *(arequest(socket_path, *request) for request in requests)
            )
        )

    return asyncio.run(_go())
