"""The service operations: compile, profile, inline, check.

Each operation is a module-level function taking a JSON-shaped params
dict and returning a JSON-serializable result dict, so the same code
runs identically in three places:

- directly (tests, the batch CLI path) via :func:`execute`;
- on the server's thread pool (sharing a live
  :class:`~repro.pipeline.session.CompilationSession`);
- on the server's process pool via :func:`pool_execute`, which pickles
  only the params and a session *spec* and ships the result plus the
  worker's observability child back to the parent.

Deterministic inputs produce deterministic result dicts, which is what
makes the service path byte-comparable with direct calls and lets the
server deduplicate identical in-flight requests by
:func:`request_key` — the content address of (op, params).
"""

from __future__ import annotations

import hashlib
import json

from repro.observability import Observability, resolve

#: Operations a client may request. Admin operations (ping, stats,
#: health, metrics, shutdown) are handled by the server itself and
#: never reach the pool.
OP_NAMES = ("compile", "profile", "inline", "check")


def request_key(op: str, params: dict | None) -> str:
    """The content-addressed identity of one request.

    Two requests with the same key are the same computation; the server
    coalesces them onto a single in-flight execution.
    """
    payload = json.dumps(
        {"op": op, "params": params or {}},
        sort_keys=True,
        separators=(",", ":"),
        default=str,
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def _run_spec(params: dict):
    from repro.profiler.profile import RunSpec

    return RunSpec(
        stdin=(params.get("stdin") or "").encode(),
        argv=list(params.get("argv") or []),
    )


def _compiled(params: dict, obs: Observability, session=None):
    """Compile (and optionally pre-optimize) the request's source."""
    source = params.get("source")
    if not isinstance(source, str) or not source:
        raise ValueError("params['source'] must be a non-empty string")
    filename = params.get("filename") or "<service>"
    pass_spec = params.get("passes") or None
    if session is not None:
        return session.compiled_module(
            source,
            filename=filename,
            pass_spec=pass_spec or "",
            obs=obs,
        )
    from repro.compiler import compile_program

    module = compile_program(source, filename, obs=obs)
    if pass_spec:
        from repro.opt import optimize_module

        optimize_module(module, obs=obs, pass_spec=pass_spec)
    return module


def _inline_params(params: dict):
    from repro.inliner.params import InlineParameters

    return InlineParameters(
        weight_threshold=float(params.get("threshold", 10.0)),
        size_limit_factor=float(params.get("growth", 1.25)),
    )


def _engine(params: dict) -> str:
    """Validated execution engine for the request (default counting)."""
    from repro.vm.machine import ENGINES

    engine = params.get("engine") or "counting"
    if engine not in ENGINES:
        raise ValueError(
            f"params['engine'] must be one of {', '.join(ENGINES)};"
            f" got {engine!r}"
        )
    return engine


def op_compile(params: dict, obs: Observability, session=None) -> dict:
    """Compile the source; report sizes and (optionally) the IL text."""
    module = _compiled(params, obs, session)
    result = {
        "code_size": module.total_code_size(),
        "functions": sorted(module.functions),
        "externals": sorted(module.externals),
    }
    if params.get("dump"):
        from repro.il.printer import format_module

        result["il"] = format_module(module)
    return result


def op_profile(params: dict, obs: Observability, session=None) -> dict:
    """Compile and execute once; report outputs and dynamic counts."""
    from repro.profiler.profile import run_once

    module = _compiled(params, obs, session)
    run = run_once(module, _run_spec(params), obs=obs, engine=_engine(params))
    result = {"exit_code": run.exit_code, "stdout": run.stdout}
    result.update(run.counters.to_summary())
    return result


def op_inline(params: dict, obs: Observability, session=None) -> dict:
    """The full profile -> inline -> re-profile loop for one input."""
    from repro.inliner.manager import inline_module
    from repro.profiler.profile import profile_module

    module = _compiled(params, obs, session)
    spec = _run_spec(params)
    engine = _engine(params)
    profile = profile_module(
        module, [spec], check_exit=False, obs=obs, engine=engine
    )
    outcome = inline_module(module, profile, _inline_params(params), obs=obs)
    after = profile_module(
        outcome.module, [spec], check_exit=False, obs=obs, engine=engine
    )
    before_calls = profile.avg_calls
    return {
        "expanded": len(outcome.records),
        "code_size_before": outcome.original_size,
        "code_size_after": outcome.final_size,
        "code_increase": outcome.code_increase,
        "call_decrease": (
            1.0 - after.avg_calls / before_calls if before_calls else 0.0
        ),
        "il_before": profile.total.il,
        "il_after": after.total.il,
        "calls_before": profile.total.calls,
        "calls_after": after.total.calls,
    }


def op_check(params: dict, obs: Observability, session=None) -> dict:
    """Inline, then run original and inlined side by side on the input."""
    from repro.experiments.pipeline import compare_outputs
    from repro.inliner.manager import inline_module
    from repro.profiler.profile import profile_module

    module = _compiled(params, obs, session)
    spec = _run_spec(params)
    engine = _engine(params)
    profile = profile_module(
        module, [spec], check_exit=False, obs=obs, engine=engine
    )
    outcome = inline_module(module, profile, _inline_params(params), obs=obs)
    comparison = compare_outputs(module, outcome.module, [spec], engine=engine)
    return {
        "ok": comparison.matches,
        "expanded": len(outcome.records),
        "divergences": list(comparison.divergences),
    }


OPS = {
    "compile": op_compile,
    "profile": op_profile,
    "inline": op_inline,
    "check": op_check,
}


def execute(
    op: str,
    params: dict | None,
    obs: Observability | None = None,
    session=None,
) -> dict:
    """Dispatch one operation; the direct (batch) execution path."""
    handler = OPS.get(op)
    if handler is None:
        raise ValueError(
            f"unknown operation {op!r}; choose from {', '.join(OPS)}"
        )
    return handler(params or {}, resolve(obs), session)


def pool_execute(
    op: str,
    params: dict | None,
    session_spec: dict | None,
    want_obs: bool,
    trace: dict | None = None,
):
    """The worker-pool entry point (picklable for process pools).

    Returns ``(result, child_obs)``; the server absorbs the child into
    its parent observability so per-request telemetry lands in one
    trace. Process workers re-open the shared disk cache from
    ``session_spec`` (see :meth:`CompilationSession.spec`).

    ``trace`` is the request's wire-form
    :class:`~repro.observability.context.TraceContext`; when present it
    is bound onto the worker's tracer, so every span and event the
    worker emits — across the process boundary — carries the request's
    ``trace_id``/``request_id`` at emit time, not just after the server
    stamps the absorbed records.
    """
    from repro.experiments.pipeline import _session_from_spec

    child = Observability.create() if want_obs else None
    if child is not None and trace:
        from repro.observability.context import TraceContext

        context = TraceContext.from_wire(trace)
        if context is not None:
            child.tracer.bind(**context.attrs())
    result = execute(
        op, params, obs=resolve(child), session=_session_from_spec(session_spec)
    )
    return result, child
