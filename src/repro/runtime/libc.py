"""Virtual headers and the C-subset libc source."""

from __future__ import annotations

from repro.vm.builtins import BUILTIN_PROTOTYPES

SYS_HEADER = f"""\
#ifndef _SYS_H
#define _SYS_H
#define EOF (-1)
#define NULL 0
#define O_READ 0
#define O_WRITE 1
{BUILTIN_PROTOTYPES}
#endif
"""

STRING_HEADER = """\
#ifndef _STRING_H
#define _STRING_H
int strlen(char *s);
int strcmp(char *a, char *b);
int strncmp(char *a, char *b, int n);
char *strcpy(char *dst, char *src);
char *strncpy(char *dst, char *src, int n);
char *strcat(char *dst, char *src);
char *strchr(char *s, int c);
char *strstr(char *haystack, char *needle);
char *memcpy(char *dst, char *src, int n);
char *memset(char *dst, int value, int n);
int memcmp(char *a, char *b, int n);
#endif
"""

CTYPE_HEADER = """\
#ifndef _CTYPE_H
#define _CTYPE_H
int isdigit(int c);
int isalpha(int c);
int isalnum(int c);
int isspace(int c);
int isupper(int c);
int islower(int c);
int toupper(int c);
int tolower(int c);
#endif
"""

BIO_HEADER = """\
#ifndef _BIO_H
#define _BIO_H
int bgetchar(void);
int bfgetc(int fd);
void bputchar(int c);
void bputs(char *s);
void bput_int(int value);
void bflush(void);
#endif
"""

STDLIB_HEADER = """\
#ifndef _STDLIB_H
#define _STDLIB_H
int atoi(char *s);
int abs(int x);
void itoa(int value, char *buffer);
int rand(void);
void srand(int seed);
void sort(char *base, int count, int width, int (*cmp)(char *a, char *b));
#endif
"""

#: The libc, written in the C subset. Linked by default so these
#: functions have visible bodies and participate in inline expansion.
LIBC_SOURCE = """\
#include <sys.h>

int strlen(char *s)
{
    int n = 0;
    while (s[n])
        n++;
    return n;
}

int strcmp(char *a, char *b)
{
    int i = 0;
    while (a[i] && a[i] == b[i])
        i++;
    return a[i] - b[i];
}

int strncmp(char *a, char *b, int n)
{
    int i = 0;
    while (i < n && a[i] && a[i] == b[i])
        i++;
    if (i == n)
        return 0;
    return a[i] - b[i];
}

char *strcpy(char *dst, char *src)
{
    int i = 0;
    while (src[i]) {
        dst[i] = src[i];
        i++;
    }
    dst[i] = 0;
    return dst;
}

char *strncpy(char *dst, char *src, int n)
{
    int i = 0;
    while (i < n && src[i]) {
        dst[i] = src[i];
        i++;
    }
    while (i < n) {
        dst[i] = 0;
        i++;
    }
    return dst;
}

char *strcat(char *dst, char *src)
{
    int n = strlen(dst);
    strcpy(dst + n, src);
    return dst;
}

char *strchr(char *s, int c)
{
    int i = 0;
    while (s[i]) {
        if (s[i] == c)
            return s + i;
        i++;
    }
    if (c == 0)
        return s + i;
    return NULL;
}

char *strstr(char *haystack, char *needle)
{
    int n = strlen(needle);
    int i = 0;
    if (n == 0)
        return haystack;
    while (haystack[i]) {
        if (strncmp(haystack + i, needle, n) == 0)
            return haystack + i;
        i++;
    }
    return NULL;
}

char *memcpy(char *dst, char *src, int n)
{
    int i;
    for (i = 0; i < n; i++)
        dst[i] = src[i];
    return dst;
}

char *memset(char *dst, int value, int n)
{
    int i;
    for (i = 0; i < n; i++)
        dst[i] = value;
    return dst;
}

int memcmp(char *a, char *b, int n)
{
    int i;
    for (i = 0; i < n; i++) {
        if (a[i] != b[i])
            return a[i] - b[i];
    }
    return 0;
}

int isdigit(int c)
{
    return c >= '0' && c <= '9';
}

int isalpha(int c)
{
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
}

int isalnum(int c)
{
    return isalpha(c) || isdigit(c);
}

int isspace(int c)
{
    return c == ' ' || c == '\\t' || c == '\\n' || c == '\\r' ||
           c == '\\f' || c == '\\v';
}

int isupper(int c)
{
    return c >= 'A' && c <= 'Z';
}

int islower(int c)
{
    return c >= 'a' && c <= 'z';
}

int toupper(int c)
{
    if (islower(c))
        return c - 'a' + 'A';
    return c;
}

int tolower(int c)
{
    if (isupper(c))
        return c - 'A' + 'a';
    return c;
}

int atoi(char *s)
{
    int value = 0;
    int sign = 1;
    int i = 0;
    while (isspace(s[i]))
        i++;
    if (s[i] == '-') {
        sign = -1;
        i++;
    } else if (s[i] == '+') {
        i++;
    }
    while (isdigit(s[i])) {
        value = value * 10 + (s[i] - '0');
        i++;
    }
    return sign * value;
}

int abs(int x)
{
    if (x < 0)
        return -x;
    return x;
}

void itoa(int value, char *buffer)
{
    /* Work in negative values throughout: -INT_MIN overflows, but
       every int is representable negated downward. C's division
       truncates toward zero and % follows the dividend's sign, so
       value % 10 is in [-9, 0] here. */
    char digits[16];
    int n = 0;
    int i = 0;
    if (value < 0) {
        buffer[i] = '-';
        i++;
    } else {
        value = -value;
    }
    if (value == 0) {
        digits[n] = '0';
        n++;
    }
    while (value < 0) {
        digits[n] = '0' - value % 10;
        n++;
        value = value / 10;
    }
    while (n > 0) {
        n--;
        buffer[i] = digits[n];
        i++;
    }
    buffer[i] = 0;
}

/* ------------------------------------------------------------------
   Buffered standard I/O. Real stdio's getc/putc are macros over a
   buffer, issuing one read/write system call per block; these are the
   same thing as ordinary (inlinable) functions. Only the block refill
   and the final flush reach the external world. */

#define _BIO_SIZE 128
#define _BIO_FDS 4

char _bin_data[_BIO_SIZE];
int _bin_pos = 0;
int _bin_len = 0;

int bgetchar(void)
{
    if (_bin_pos >= _bin_len) {
        _bin_len = read_stdin(_bin_data, _BIO_SIZE);
        _bin_pos = 0;
        if (_bin_len <= 0)
            return EOF;
    }
    return _bin_data[_bin_pos++] & 255;
}

int _bfd_fd[_BIO_FDS] = { -1, -1, -1, -1 };
char _bfd_data[_BIO_FDS][_BIO_SIZE];
int _bfd_pos[_BIO_FDS];
int _bfd_len[_BIO_FDS];

int _bfd_slot(int fd)
{
    int i;
    for (i = 0; i < _BIO_FDS; i++) {
        if (_bfd_fd[i] == fd)
            return i;
    }
    for (i = 0; i < _BIO_FDS; i++) {
        if (_bfd_fd[i] == -1) {
            _bfd_fd[i] = fd;
            _bfd_pos[i] = 0;
            _bfd_len[i] = 0;
            return i;
        }
    }
    return -1;
}

int bfgetc(int fd)
{
    int slot = _bfd_slot(fd);
    if (slot < 0)
        return fgetc(fd);
    if (_bfd_pos[slot] >= _bfd_len[slot]) {
        _bfd_len[slot] = read_block(fd, _bfd_data[slot], _BIO_SIZE);
        _bfd_pos[slot] = 0;
        if (_bfd_len[slot] <= 0)
            return EOF;
    }
    return _bfd_data[slot][_bfd_pos[slot]++] & 255;
}

char _bout_data[_BIO_SIZE];
int _bout_len = 0;

void bflush(void)
{
    if (_bout_len > 0) {
        write_stdout(_bout_data, _bout_len);
        _bout_len = 0;
    }
}

void bputchar(int c)
{
    if (_bout_len >= _BIO_SIZE)
        bflush();
    _bout_data[_bout_len++] = c;
}

void bputs(char *s)
{
    int i = 0;
    while (s[i]) {
        bputchar(s[i]);
        i++;
    }
}

void bput_int(int value)
{
    char digits[16];
    itoa(value, digits);
    bputs(digits);
}

int _rand_state = 12345;

int rand(void)
{
    _rand_state = _rand_state * 1103515245 + 12345;
    return (_rand_state >> 16) & 32767;
}

void srand(int seed)
{
    _rand_state = seed;
}

void sort(char *base, int count, int width, int (*cmp)(char *a, char *b))
{
    /* Insertion sort through a comparison function pointer: every
       element comparison is a call through ### in the call graph. */
    char tmp[256];
    int i;
    for (i = 1; i < count; i++) {
        int j = i;
        memcpy(tmp, base + i * width, width);
        while (j > 0 && cmp(base + (j - 1) * width, tmp) > 0) {
            memcpy(base + j * width, base + (j - 1) * width, width);
            j--;
        }
        memcpy(base + j * width, tmp, width);
    }
}
"""


def standard_headers() -> dict[str, str]:
    """The virtual header set made available to every compilation."""
    return {
        "sys.h": SYS_HEADER,
        "string.h": STRING_HEADER,
        "ctype.h": CTYPE_HEADER,
        "stdlib.h": STDLIB_HEADER,
        "bio.h": BIO_HEADER,
    }
