"""The C-subset runtime: virtual headers and a libc.

- ``<sys.h>`` declares the VM's external builtins (the paper's system
  calls — bodies unavailable, never inlinable, routed to ``$$$``).
- ``<string.h>``, ``<ctype.h>``, ``<stdlib.h>`` declare the libc.
- :data:`LIBC_SOURCE` implements the libc *in the C subset itself*, so
  by default library calls are user functions with visible bodies that
  participate fully in profiling and inline expansion. Linking without
  it turns every libc call into an external, reproducing the paper's
  "unavailable function body" situation for library archives.
"""

from repro.runtime.libc import (
    BIO_HEADER,
    CTYPE_HEADER,
    LIBC_SOURCE,
    STDLIB_HEADER,
    STRING_HEADER,
    SYS_HEADER,
    standard_headers,
)

__all__ = [
    "BIO_HEADER",
    "CTYPE_HEADER",
    "LIBC_SOURCE",
    "STDLIB_HEADER",
    "STRING_HEADER",
    "SYS_HEADER",
    "standard_headers",
]
