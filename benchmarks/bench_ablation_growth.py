"""Ablation C: the program-size cap (§2.3.1's code-explosion guard).

Expected series: the call decrease rises steeply up to ~1.25x and then
saturates — the profile concentrates the benefit in few sites, so extra
code budget buys little (the paper's justification for a modest cap).
"""

from conftest import SCALE, emit
from repro.experiments.ablations import growth_limit_sweep, render_points


def bench_ablation_growth(benchmark):
    points = benchmark.pedantic(
        growth_limit_sweep, args=(SCALE,), iterations=1, rounds=1
    )
    emit("Ablation C: code-growth limit", render_points("", points))

    by_label = {point.label: point for point in points}
    # No budget, no expansion.
    assert by_label["limit=1x"].call_decrease <= 0.05
    assert by_label["limit=1x"].code_increase <= 0.01
    # Monotone benefit in the cap...
    decs = [point.call_decrease for point in points]
    assert all(a <= b + 1e-9 for a, b in zip(decs, decs[1:]))
    # ...with diminishing returns past 1.25x (crossover of the paper's
    # cost/benefit trade: 2.0x buys <15 points over 1.25x).
    assert by_label["limit=2x"].call_decrease - by_label[
        "limit=1.25x"
    ].call_decrease < 0.15
