"""Extension experiment: optimization scope enlargement (§1.2).

The paper's compiler-side motivation: inline expansion "provides larger
and specialized execution plans to the code optimizers". Quantified
here with loop-invariant code motion: the dynamic instructions LICM
removes grow several-fold once callee bodies are spliced into the
callers' loops, because the callees' (previously hidden) address
arithmetic becomes visibly invariant.
"""

from conftest import emit
from repro.inliner.manager import inline_module
from repro.opt import licm_module, optimize_module
from repro.profiler.profile import profile_module, run_once
from repro.workloads import benchmark_by_name


def _measure(name):
    benchmark = benchmark_by_name(name)
    module = benchmark.compile()
    optimize_module(module)
    specs = benchmark.make_runs("small")[:2]
    profile = profile_module(module, specs)

    def total_ils(m):
        return sum(run_once(m, spec).counters.il for spec in specs)

    plain_licm = module.clone()
    licm_module(plain_licm)
    optimize_module(plain_licm)

    inlined = inline_module(module, profile).module
    inlined_licm = inlined.clone()
    licm_module(inlined_licm)
    optimize_module(inlined_licm)

    saved_before = total_ils(module) - total_ils(plain_licm)
    saved_after = total_ils(inlined) - total_ils(inlined_licm)
    return name, saved_before, saved_after


def _run_experiment():
    return [_measure(name) for name in ("compress", "eqn", "grep")]


def bench_licm_synergy(benchmark):
    rows = benchmark.pedantic(_run_experiment, iterations=1, rounds=1)

    lines = ["benchmark   LICM savings (ILs): plain    after-inlining"]
    for name, before, after in rows:
        lines.append(f"{name:10s}  {before:10d}    {after:10d}")
    emit("LICM savings before vs. after inline expansion", "\n".join(lines))

    for name, before, after in rows:
        assert after > before, name  # inlining widens LICM's scope
    # And decisively so on at least one benchmark.
    assert any(after > 3 * max(before, 1) for _, before, after in rows)
