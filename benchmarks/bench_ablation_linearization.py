"""Ablation D: linearization order (§3.3).

Compares the paper's pure execution-count ordering with the hybrid
callee-first ordering. Expected: hybrid matches or beats pure weight on
call decrease, because weight ties between a hot caller and its equally
hot callee no longer block arcs arbitrarily.
"""

from conftest import SCALE, emit
from repro.experiments.ablations import linearization_comparison, render_points


def bench_ablation_linearization(benchmark):
    points = benchmark.pedantic(
        linearization_comparison, args=(SCALE,), iterations=1, rounds=1
    )
    emit("Ablation D: linearization order", render_points("", points))

    by_label = {point.label: point for point in points}
    assert by_label["hybrid"].call_decrease >= by_label["weight"].call_decrease
