"""Extension experiment: register traffic before/after inlining.

The paper's §1.1 argues hardware register windows and inter-procedural
allocation exist to absorb call-boundary register traffic, and that
"if most of the function calls can be eliminated, these complicated
remedies would be unnecessary". Reproduced with a graph-coloring
allocator: profile-weighted save/restore events collapse after
inlining, while spill events stay negligible — total register memory
traffic drops sharply at every register-file size.
"""

from conftest import emit
from repro.regalloc import pressure_experiment
from repro.workloads import benchmark_by_name


def _run_experiment():
    benchmark = benchmark_by_name("compress")
    module = benchmark.compile()
    specs = benchmark.make_runs("small")[:2]
    return pressure_experiment(module, specs, ks=(4, 8, 16))


def bench_regalloc(benchmark):
    results = benchmark.pedantic(_run_experiment, iterations=1, rounds=1)

    lines = ["K    save/restore before->after      spills before->after"]
    for k, before, after in results:
        lines.append(
            f"{k:<4d} {before.save_restore_events:12.0f} -> {after.save_restore_events:10.0f}"
            f"   {before.spill_events:8.0f} -> {after.spill_events:8.0f}"
        )
    emit("Register memory traffic before/after inlining (compress)", "\n".join(lines))

    for k, before, after in results:
        # Call-boundary traffic collapses with the calls...
        assert after.save_restore_events < 0.5 * before.save_restore_events
        # ...and the pressure increase does not eat the win.
        assert after.total_memory_events < before.total_memory_events
