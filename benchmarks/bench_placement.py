"""Extension experiment: layout vs. inlining as locality fixes.

Compares three strategies for instruction-cache locality on compress:
a scattered (worst-practice) layout, Pettis–Hansen-style profile-guided
function placement, and inline expansion under the scattered layout.
Both remedies beat the scattered baseline on small caches; inlining's
advantage is that the locality becomes *internal* to the functions and
no longer depends on where the linker puts them — the IMPACT-I position
(paper refs 17–18).
"""

from conftest import emit
from repro.layout import placement_experiment
from repro.workloads import benchmark_by_name


def _run_experiment():
    benchmark = benchmark_by_name("compress")
    module = benchmark.compile()
    specs = benchmark.make_runs("small")[:2]
    return placement_experiment(module, specs)


def bench_placement(benchmark):
    points = benchmark.pedantic(_run_experiment, iterations=1, rounds=1)

    lines = ["cache        scattered  placed            inlined"]
    for p in points:
        lines.append(
            f"{p.size_bytes:5d}B {p.associativity}-way  {p.miss_scattered:.4f}"
            f"    {p.miss_placed:.4f} ({p.placement_improvement:+.0%})"
            f"   {p.miss_inlined_scattered:.4f} ({p.inlining_improvement:+.0%})"
        )
    emit("I-cache: placement vs. inlining (compress)", "\n".join(lines))

    for p in points:
        # Both locality fixes beat the scattered baseline.
        assert p.placement_improvement > 0
        assert p.inlining_improvement > 0
