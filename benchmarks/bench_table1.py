"""Regenerates Table 1: benchmark characteristics.

Paper shape: twelve UNIX programs with widely varying static sizes and
dynamic IL counts, and no direct relation between the two.
"""

from conftest import emit
from repro.experiments.tables import table1


def bench_table1(benchmark, suite_results):
    text = benchmark.pedantic(
        table1, args=(suite_results,), iterations=1, rounds=1
    )
    emit("Table 1. Benchmark characteristics", text)
    lines = text.splitlines()
    assert len(lines) == 3 + 12  # title + header + rule + 12 rows

    # Shape check: dynamic size is not a function of static size.
    rows = [line.split() for line in lines[3:]]
    by_name = {row[0]: row for row in rows}
    assert int(by_name["tee"][1]) < int(by_name["yacc"][1])  # C lines
    assert by_name["lex"][3].endswith("K")
