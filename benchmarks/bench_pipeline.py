"""Micro-benchmarks of the toolchain's stages (wall-clock).

Not a paper table — these time the reproduction's own kernels so
regressions in the compiler, profiler VM, and expander are visible.
"""

import pytest

from repro.inliner.manager import inline_module
from repro.opt import optimize_module
from repro.profiler.profile import profile_module, run_once
from repro.workloads import benchmark_by_name


@pytest.fixture(scope="module")
def grep_benchmark():
    return benchmark_by_name("grep")


@pytest.fixture(scope="module")
def grep_module(grep_benchmark):
    return grep_benchmark.compile()


@pytest.fixture(scope="module")
def grep_specs(grep_benchmark):
    return grep_benchmark.make_runs("small")


@pytest.fixture(scope="module")
def grep_profile(grep_module, grep_specs):
    return profile_module(grep_module, grep_specs)


def bench_compile(benchmark, grep_benchmark):
    module = benchmark(grep_benchmark.compile)
    assert "main" in module.functions


def bench_vm_execution(benchmark, grep_module, grep_specs):
    result = benchmark(run_once, grep_module, grep_specs[0])
    assert result.exit_code == 0


def bench_profiling(benchmark, grep_module, grep_specs):
    profile = benchmark.pedantic(
        profile_module, args=(grep_module, grep_specs), iterations=1, rounds=3
    )
    assert profile.avg_calls > 0


def bench_inline_expansion(benchmark, grep_module, grep_profile):
    result = benchmark(inline_module, grep_module, grep_profile)
    assert result.records


def bench_optimizer(benchmark, grep_module):
    def optimize_fresh():
        module = grep_module.clone()
        return optimize_module(module)

    stats = benchmark(optimize_fresh)
    assert stats.total_changes >= 0
