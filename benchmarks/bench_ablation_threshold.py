"""Ablation A: the weight threshold T of the cost function (§2.3.3).

Expected series: raising T from 1 to 1000 monotonically shrinks both
the code increase and the call decrease — T=10 (the paper's value)
gives nearly all the benefit of T=1 at lower cost.
"""

from conftest import SCALE, emit
from repro.experiments.ablations import render_points, threshold_sweep


def bench_ablation_threshold(benchmark):
    points = benchmark.pedantic(
        threshold_sweep, args=(SCALE,), iterations=1, rounds=1
    )
    emit("Ablation A: weight threshold T", render_points("", points))

    decs = [point.call_decrease for point in points]
    incs = [point.code_increase for point in points]
    # Higher threshold can only shrink the selected set.
    assert decs[0] >= decs[-1]
    assert incs[0] >= incs[-1]
    # T=10 keeps most of T=1's benefit.
    assert decs[1] >= 0.8 * decs[0]
