"""Regenerates Table 4: inline expansion results — the headline table.

Paper shape: ~59% of dynamic calls eliminated on average for ~17%
static code growth; call-intensive programs (grep, compress, lex, yacc)
in the high band; wc and tee at 0%/0%; after expansion, calls are a
small fraction of control transfers (CTs per call >> 1).
"""

import statistics

from conftest import emit
from repro.experiments.tables import table4


def bench_table4(benchmark, suite_results):
    text = benchmark.pedantic(
        table4, args=(suite_results,), iterations=1, rounds=1
    )
    emit("Table 4. Inline expansion results", text)

    by_name = {r.name: r for r in suite_results}
    code_avg = statistics.fmean(r.code_increase for r in suite_results)
    call_avg = statistics.fmean(r.call_decrease for r in suite_results)

    # Headline: call decrease lands in the paper's band and exceeds
    # code increase by a wide margin (paper: 58.7% vs 16.5%).
    assert 0.45 <= call_avg <= 0.75, call_avg
    assert code_avg <= 0.30, code_avg
    assert call_avg > 2 * code_avg

    # Per-benchmark bands.
    for name in ("grep", "compress", "yacc"):
        assert by_name[name].call_decrease >= 0.6, name
    for name in ("wc", "tee"):
        assert by_name[name].call_decrease <= 0.05, name
        assert by_name[name].code_increase <= 0.05, name
    assert 0.3 <= by_name["cmp"].call_decrease <= 0.65

    # After expansion, calls become rare relative to other control
    # transfers (the paper's "about 1% of the control transfers").
    assert statistics.fmean(r.cts_per_call for r in suite_results) > 5

    # Correctness gate: every inlined binary matched its original.
    assert all(r.outputs_match for r in suite_results)
