"""Regenerates Table 3: dynamic function call behaviour.

Paper shape: although few static sites are safe, safe sites carry most
dynamic calls (their average 69%); unsafe dynamic percentages are
"amazingly small"; wc/tee are external-dominated outliers with ~0% safe.
"""

import statistics

from conftest import emit
from repro.experiments.tables import table3
from repro.inliner.classify import SiteClass


def bench_table3(benchmark, suite_results):
    text = benchmark.pedantic(
        table3, args=(suite_results,), iterations=1, rounds=1
    )
    emit("Table 3. Dynamic function call behavior", text)

    by_name = {r.name: r for r in suite_results}
    safe_avg = statistics.fmean(
        r.classified.dynamic_fraction(SiteClass.SAFE) for r in suite_results
    )
    unsafe_avg = statistics.fmean(
        r.classified.dynamic_fraction(SiteClass.UNSAFE) for r in suite_results
    )
    # Paper: dynamic safe average ~69%, dynamic unsafe "amazingly small".
    assert safe_avg > 0.5
    assert unsafe_avg < 0.15
    # wc and tee: function calls unimportant, almost everything external.
    for name in ("wc", "tee"):
        assert by_name[name].classified.dynamic_fraction(SiteClass.SAFE) < 0.05
        assert by_name[name].classified.dynamic_fraction(SiteClass.EXTERNAL) > 0.9
    # espresso exercises calls through pointers (### arcs).
    assert by_name["espresso"].classified.dynamic[SiteClass.POINTER] > 0
