"""Shared fixtures for the benchmark harness.

Each ``bench_table*.py`` regenerates one table/figure of the paper and
prints it, so ``pytest benchmarks/ --benchmark-only`` doubles as the
experiment runner. Set ``REPRO_SCALE=full`` for paper-sized input sets
(slower); the default ``small`` preserves every qualitative shape.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.pipeline import run_suite

SCALE = os.environ.get("REPRO_SCALE", "small")

_capture_manager = None


def pytest_configure(config):
    global _capture_manager
    _capture_manager = config.pluginmanager.getplugin("capturemanager")


@pytest.fixture(scope="session")
def suite_results():
    """Pipeline results for all twelve benchmarks (computed once)."""
    return run_suite(scale=SCALE)


def emit(title: str, text: str) -> None:
    """Print a regenerated table to the real terminal.

    The printed rows are the point of this harness, so bypass pytest's
    output capture — ``pytest benchmarks/ --benchmark-only`` shows them
    directly (and ``tee`` records them).
    """
    body = f"\n==== {title} (scale={SCALE}) ====\n{text}"
    if _capture_manager is not None:
        with _capture_manager.global_and_fixture_disabled():
            print(body, flush=True)
    else:
        print(body, flush=True)
