"""Ablation E: does the profile generalize to unseen inputs?

The paper's approach "is more suitable for characterizing realistic
programs for which representative inputs can be easily collected"
(§1.2). Expected: inlining decisions trained on half of each
benchmark's inputs eliminate nearly as many calls on the held-out half
— hot call sites are a property of the program, not of one input.
"""

from conftest import SCALE, emit
from repro.experiments.ablations import heldout_input_check, render_points


def bench_ablation_heldout(benchmark):
    points = benchmark.pedantic(
        heldout_input_check, args=(SCALE,), iterations=1, rounds=1
    )
    emit("Ablation E: profile generalization", render_points("", points))

    by_label = {point.label: point for point in points}
    train = by_label["train-inputs"].call_decrease
    held_out = by_label["held-out-inputs"].call_decrease
    assert train > 0.3
    # Held-out benefit within 15 points of the trained benefit.
    assert abs(train - held_out) < 0.15
