"""Regenerates the §4.4 post-inline dynamic call breakdown.

Paper: after inline expansion, the remaining dynamic calls split into
external 56.1%, pointer 2.8%, unsafe 18.0%, safe 23.1% — externals
(system calls) become the dominant residual, motivating the paper's
closing discussion of system-call costs.
"""

from conftest import emit
from repro.experiments.pipeline import aggregate_dynamic_breakdown
from repro.experiments.tables import post_inline_breakdown
from repro.inliner.classify import SiteClass


def bench_breakdown(benchmark, suite_results):
    text = benchmark.pedantic(
        post_inline_breakdown, args=(suite_results,), iterations=1, rounds=1
    )
    emit("Post-inline dynamic call breakdown (paper 4.4)", text)

    mix = aggregate_dynamic_breakdown(suite_results)
    # Shape: externals are the largest class of the residual calls and
    # pointer calls stay marginal, as in the paper.
    assert mix[SiteClass.EXTERNAL] > 0.3
    assert mix[SiteClass.EXTERNAL] >= mix[SiteClass.UNSAFE]
    assert mix[SiteClass.POINTER] < 0.1
