"""Extension experiment: instruction-cache behaviour after inlining.

The paper's §5: "Although inline expansion increases the static code
size, it greatly reduces the mapping conflict in instruction caches
with small set-associativities" (measured in the authors' ISCA 1989
companion). Reproduced here on the compress benchmark with a scattered
code layout (callers and callees placed apart, the conflict regime):
small direct-mapped caches show large miss-ratio reductions after
profile-guided inlining.
"""

from conftest import emit
from repro.icache import icache_experiment
from repro.workloads import benchmark_by_name

_CONFIGS = [
    (512, 16, 1),
    (1024, 16, 1),
    (2048, 16, 1),
    (1024, 16, 2),
]


def _run_experiment():
    benchmark = benchmark_by_name("compress")
    module = benchmark.compile()
    specs = benchmark.make_runs("small")[:2]
    return icache_experiment(module, specs, configs=_CONFIGS)


def bench_icache(benchmark):
    points = benchmark.pedantic(_run_experiment, iterations=1, rounds=1)

    lines = ["cache        before   after    improvement"]
    for point in points:
        lines.append(
            f"{point.size_bytes:5d}B {point.associativity}-way"
            f"   {point.miss_before:.4f}   {point.miss_after:.4f}"
            f"   {point.improvement:+.1%}"
        )
    emit("I-cache miss ratios before/after inlining (compress)", "\n".join(lines))

    # Shape: in the small direct-mapped configurations, inlining cuts
    # the miss ratio substantially (the paper's conflict-reduction
    # claim); sanity bounds on all ratios.
    for point in points:
        assert 0.0 <= point.miss_after <= 1.0
        assert 0.0 <= point.miss_before <= 1.0
    small_direct = [p for p in points if p.associativity == 1 and p.size_bytes <= 1024]
    assert all(p.improvement > 0.3 for p in small_direct)
