"""Ablation B: profile-guided selection vs. the §1.2 static heuristics.

Expected series: at the same code budget, profile-guided expansion
eliminates far more dynamic calls than PL.8-style leaf inlining,
MIPS-style loop inlining, callee-size thresholds, or GNU-style
programmer hints — the paper's core argument for profile information.
"""

from conftest import SCALE, emit
from repro.experiments.ablations import baseline_comparison, render_points


def bench_ablation_baselines(benchmark):
    points = benchmark.pedantic(
        baseline_comparison, args=(SCALE,), iterations=1, rounds=1
    )
    emit(
        "Ablation B: profile-guided vs. static heuristics",
        render_points("", points),
    )

    by_label = {point.label: point for point in points}
    guided = by_label["profile-guided"]
    for label, point in by_label.items():
        if label != "profile-guided":
            assert guided.call_decrease >= point.call_decrease, label
    # And the margin is decisive, not marginal.
    best_static = max(
        point.call_decrease
        for label, point in by_label.items()
        if label != "profile-guided"
    )
    assert guided.call_decrease >= best_static + 0.10
