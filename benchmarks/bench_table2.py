"""Regenerates Table 2: static function call characteristics.

Paper shape: large unsafe percentages (their average 65%), small safe
percentages (their average 11%), external sites a sizeable minority,
pointer sites rare.
"""

from conftest import emit
from repro.experiments.tables import table2
from repro.inliner.classify import SiteClass


def bench_table2(benchmark, suite_results):
    text = benchmark.pedantic(
        table2, args=(suite_results,), iterations=1, rounds=1
    )
    emit("Table 2. Static function call characteristics", text)

    import statistics

    unsafe = statistics.fmean(
        r.classified.static_fraction(SiteClass.UNSAFE) for r in suite_results
    )
    safe = statistics.fmean(
        r.classified.static_fraction(SiteClass.SAFE) for r in suite_results
    )
    pointer = statistics.fmean(
        r.classified.static_fraction(SiteClass.POINTER) for r in suite_results
    )
    # Shape: unsafe dominates the static sites, safe is the small
    # minority, pointer sites are rare (paper: 65% / 11% / ~2%).
    assert unsafe > 0.35
    assert safe < 0.45
    assert pointer < 0.10
    assert unsafe > safe
