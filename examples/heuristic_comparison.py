#!/usr/bin/env python3
"""Compare profile-guided inlining against the no-profile heuristics.

Reproduces in miniature the paper's §1.2 survey: IBM PL.8 inlined all
leaf procedures, MIPS used loop structure, GNU C trusted the ``inline``
keyword. On the grep benchmark the profile-guided expander should match
or beat all of them at equal code budget.

Run with ``python examples/heuristic_comparison.py``.
"""

from repro import InlineParameters, profile_module, run_once
from repro.baselines import (
    hint_inline,
    leaf_inline,
    loop_inline,
    size_threshold_inline,
)
from repro.inliner.manager import inline_module
from repro.opt import optimize_module
from repro.workloads import benchmark_by_name


def measure(module, inlined, specs):
    before = sum(run_once(module, s).counters.calls for s in specs)
    after = sum(run_once(inlined, s).counters.calls for s in specs)
    growth = (inlined.total_code_size() - module.total_code_size()) / (
        module.total_code_size()
    )
    return 1 - after / before, growth


def main() -> None:
    benchmark = benchmark_by_name("grep")
    module = benchmark.compile()
    optimize_module(module)
    specs = benchmark.make_runs("small")
    profile = profile_module(module, specs)
    params = InlineParameters()

    contenders = [
        ("profile-guided", inline_module(module, profile, params).module),
        ("leaf (PL.8)", leaf_inline(module, params).module),
        ("loop (MIPS)", loop_inline(module, params).module),
        ("size<=25", size_threshold_inline(module, 25, params).module),
        ("hint (GNU)", hint_inline(module, params).module),
    ]
    print(f"{'heuristic':16s}  {'call dec':>8s}  {'code inc':>8s}")
    for label, inlined in contenders:
        decrease, growth = measure(module, inlined, specs)
        print(f"{label:16s}  {100 * decrease:7.1f}%  {100 * growth:7.1f}%")


if __name__ == "__main__":
    main()
