#!/usr/bin/env python3
"""Quickstart: compile, profile, inline, and compare a small C program.

Run with ``python examples/quickstart.py``.
"""

from repro import (
    InlineParameters,
    RunSpec,
    compile_program,
    inline_module,
    profile_module,
    run_once,
)

SOURCE = """
#include <sys.h>
#include <string.h>

/* Small helper functions, as structured programming encourages; the
   expander's job is to make them free. */

int classify(int c)
{
    if (c == ' ' || c == '\\t' || c == '\\n')
        return 0;
    if (c >= '0' && c <= '9')
        return 1;
    return 2;
}

int weight_of(int kind)
{
    return kind == 1 ? 3 : (kind == 2 ? 1 : 0);
}

int main(void)
{
    int c = getchar();
    int score = 0;
    while (c != EOF) {
        score += weight_of(classify(c));
        c = getchar();
    }
    print_str("score ");
    print_int(score);
    putchar('\\n');
    return 0;
}
"""


def main() -> None:
    module = compile_program(SOURCE)
    spec = RunSpec(stdin=b"the 12 quick brown foxes jumped over 3 lazy dogs")

    baseline = run_once(module, spec)
    print("baseline output :", baseline.stdout.strip())
    print("baseline calls  :", baseline.counters.calls)

    # Profile on representative input, then expand the important sites.
    profile = profile_module(module, [spec])
    result = inline_module(module, profile, InlineParameters())
    print("sites expanded  :", len(result.records))
    print(f"code increase   : {100 * result.code_increase:.1f}%")

    inlined = run_once(result.module, spec)
    assert inlined.stdout == baseline.stdout, "inlining must not change behavior"
    print("inlined calls   :", inlined.counters.calls)
    decrease = 1 - inlined.counters.calls / baseline.counters.calls
    print(f"call decrease   : {100 * decrease:.1f}%")


if __name__ == "__main__":
    main()
