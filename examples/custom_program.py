#!/usr/bin/env python3
"""Bring your own C program: a word-frequency counter, end to end.

Shows the pieces a downstream user would touch: the virtual file
system, argv, the weighted call graph, hazard classification, and the
selection decisions the cost function makes — including a recursion
whose stack usage blocks inlining (§2.3.2).

Run with ``python examples/custom_program.py``.
"""

from repro import InlineParameters, RunSpec, compile_program, profile_module, run_once
from repro.callgraph import build_call_graph, recursive_functions
from repro.inliner import classify_sites, SiteClass
from repro.inliner.manager import inline_module

SOURCE = """
#include <sys.h>
#include <string.h>
#include <ctype.h>

#define MAXWORDS 64
#define WORDLEN 16

char words[MAXWORDS][WORDLEN];
int counts[MAXWORDS];
int nwords = 0;

int find_word(char *word)
{
    int i;
    for (i = 0; i < nwords; i++) {
        if (strcmp(words[i], word) == 0)
            return i;
    }
    return -1;
}

void add_word(char *word)
{
    int slot = find_word(word);
    if (slot >= 0) {
        counts[slot]++;
        return;
    }
    if (nwords < MAXWORDS) {
        strcpy(words[nwords], word);
        counts[nwords] = 1;
        nwords++;
    }
}

/* Deliberately deep recursion with a big frame: the expander must
   refuse to inline this into the recursive path (stack hazard). */
int deep_sum(int n)
{
    char scratch[2048];
    scratch[0] = n;
    if (n <= 0)
        return scratch[0];
    return n + deep_sum(n - 1);
}

int main(int argc, char **argv)
{
    int fd = open(argv[1], O_READ);
    char word[WORDLEN];
    int n = 0;
    int c = fgetc(fd);
    int i;
    while (c != EOF) {
        if (isalpha(c)) {
            if (n < WORDLEN - 1) {
                word[n] = tolower(c);
                n++;
            }
        } else if (n > 0) {
            word[n] = 0;
            add_word(word);
            n = 0;
        }
        c = fgetc(fd);
    }
    close(fd);
    for (i = 0; i < nwords; i++) {
        if (counts[i] > 1) {
            print_str(words[i]);
            putchar(' ');
            print_int(counts[i]);
            putchar('\\n');
        }
    }
    print_int(deep_sum(20));
    putchar('\\n');
    return 0;
}
"""

TEXT = b"""the compiler expands the function and the function disappears
the calls that remain are the system calls the compiler cannot see
"""


def main() -> None:
    module = compile_program(SOURCE)
    spec = RunSpec(files={"essay.txt": TEXT}, argv=["essay.txt"])
    print(run_once(module, spec).stdout)

    profile = profile_module(module, [spec])
    graph = build_call_graph(module, profile)
    print("recursive functions:", sorted(
        name for name in recursive_functions(graph)
        if name in ("deep_sum", "find_word", "add_word")
    ))

    params = InlineParameters(stack_bound=1024)
    classified = classify_sites(module, graph, profile, params)
    for site, site_class in sorted(classified.by_site.items()):
        arc = graph.arcs[site]
        if arc.callee == "deep_sum" or arc.caller == "deep_sum":
            print(f"  site {site}: {arc.caller} -> {arc.callee}: {site_class.value}")

    result = inline_module(module, profile, params)
    expanded_callees = sorted({record.callee for record in result.records})
    print("inlined callees:", expanded_callees)
    assert "deep_sum" not in expanded_callees, "stack hazard must block deep_sum"

    after = run_once(result.module, spec)
    assert after.stdout == run_once(module, spec).stdout
    print(f"code increase: {100 * result.code_increase:.1f}%")
    safe = classified.dynamic_fraction(SiteClass.SAFE)
    print(f"dynamic safe fraction: {100 * safe:.1f}%")


if __name__ == "__main__":
    main()
