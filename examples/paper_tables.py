#!/usr/bin/env python3
"""Regenerate all of the paper's tables in one go (small scale).

Equivalent to ``python -m repro.experiments all``; use
``--scale full`` there for the paper-sized input sets.

Run with ``python examples/paper_tables.py``.
"""

from repro.experiments import run_suite
from repro.experiments.tables import all_tables


def main() -> None:
    results = run_suite(scale="small", progress=True)
    print()
    print(all_tables(results))


if __name__ == "__main__":
    main()
