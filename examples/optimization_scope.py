#!/usr/bin/env python3
"""The paper's §1 motivation, measured: what inlining buys the optimizer.

Three instruments on one program:

1. LICM — the callee's invariant arithmetic becomes hoistable only
   after it is spliced into the caller's loop (§1.2's "enlarged scope");
2. register traffic — call-boundary save/restores collapse (§1.1's
   argument against register windows);
3. instruction cache — locality becomes internal to the merged function
   (§5's mapping-conflict claim).

Run with ``python examples/optimization_scope.py``.
"""

from repro import RunSpec, compile_program, inline_module, profile_module, run_once
from repro.icache import icache_experiment
from repro.opt import licm_module, optimize_module
from repro.regalloc import pressure_experiment

SOURCE = """
#include <sys.h>

int weights[16];

/* The scale*12+3 is invariant in the caller's loop — but only an
   inlined copy can be hoisted out of it. */
int score(int value, int scale)
{
    int factor = scale * 12 + 3;
    return value * factor + weights[value & 15];
}

int main(void)
{
    int scale = getchar() + 2;
    int i;
    int total = 0;
    for (i = 0; i < 16; i++)
        weights[i] = i * i;
    for (i = 0; i < 400; i++)
        total += score(i, scale);
    print_int(total);
    putchar('\\n');
    return 0;
}
"""


def main() -> None:
    spec = RunSpec(stdin=b"\x05")
    module = compile_program(SOURCE)
    optimize_module(module)
    profile = profile_module(module, [spec])

    # 1. LICM before vs. after inlining.
    plain = module.clone()
    licm_module(plain)
    optimize_module(plain)
    inlined = inline_module(module, profile).module
    optimize_module(inlined)
    inlined_licm = inlined.clone()
    licm_module(inlined_licm)
    optimize_module(inlined_licm)

    base_il = run_once(module, spec).counters.il
    for label, m in (
        ("original", module),
        ("original + LICM", plain),
        ("inlined", inlined),
        ("inlined + LICM", inlined_licm),
    ):
        result = run_once(m, spec)
        print(f"{label:18s} {result.counters.il:6d} ILs "
              f"({result.counters.il / base_il:.2f}x), "
              f"{result.counters.calls:4d} calls -> {result.stdout.strip()}")

    # 2. Register traffic at K=8.
    [(k, before, after)] = pressure_experiment(module, [spec], ks=(8,))
    print(f"\nregister traffic (K={k}): save/restore "
          f"{before.save_restore_events:.0f} -> {after.save_restore_events:.0f}, "
          f"spill events {before.spill_events:.0f} -> {after.spill_events:.0f}")

    # 3. Instruction cache under a scattered layout.
    [point] = icache_experiment(module, [spec], configs=[(512, 16, 1)])
    print(f"icache 512B direct-mapped: miss {point.miss_before:.4f} -> "
          f"{point.miss_after:.4f} ({point.improvement:+.0%})")


if __name__ == "__main__":
    main()
